"""Tests for the campaign subsystem: spec, store, runner, aggregation, CLI."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.campaign import (
    ROW_REGISTRY,
    CampaignSpec,
    CampaignStore,
    CellResult,
    JobSpec,
    RowDefinition,
    aggregate_campaign,
    aggregate_cells,
    bootstrap_median_ci,
    execute_cell,
    execute_job,
    register_row,
    render_report,
    render_status,
    run_campaign,
)
from repro.cli import _TABLE1_ROWS


def _tiny_spec(**overrides):
    data = {
        "name": "tiny",
        "rows": [{"row": "bounded", "sizes": [8], "seeds": [0, 1]}],
    }
    data.update(overrides)
    return CampaignSpec.from_dict(data)


def _store(tmp_path):
    return CampaignStore(os.path.join(str(tmp_path), "results.jsonl"))


class TestSpec:
    def test_roundtrip(self):
        spec = CampaignSpec.from_dict({
            "name": "x",
            "description": "d",
            "defaults": {"seeds": [0, 1]},
            "rows": [
                {"row": "bounded", "sizes": [8, 12]},
                {"row": "abl-beta", "options": {"beta": 0.6}},
            ],
        })
        again = CampaignSpec.from_dict(spec.to_dict())
        assert [j.to_dict() for j in again.jobs()] == [
            j.to_dict() for j in spec.jobs()
        ]

    def test_string_row_entries_use_registry_defaults(self):
        spec = CampaignSpec.from_dict({"name": "x", "rows": ["path"]})
        jobs = list(spec.jobs())
        definition = ROW_REGISTRY["path"]
        assert len(jobs) == (
            len(definition.default_sizes) * len(definition.default_seeds)
        )

    def test_campaign_defaults_override_registry(self):
        spec = CampaignSpec.from_dict({
            "name": "x",
            "defaults": {"sizes": [8], "seeds": [7]},
            "rows": ["bounded"],
        })
        jobs = list(spec.jobs())
        assert [(j.size, j.seed) for j in jobs] == [(8, 7)]

    def test_validate_rejects_unknown_rows(self):
        spec = CampaignSpec.from_dict({"name": "x", "rows": ["nope"]})
        with pytest.raises(ValueError, match="nope"):
            spec.validate()

    def test_config_requires_rows(self):
        with pytest.raises(ValueError):
            CampaignSpec.from_dict({"name": "x", "rows": []})

    def test_unknown_entry_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys \\['size'\\]"):
            CampaignSpec.from_dict(
                {"name": "x", "rows": [{"row": "path", "size": [2048]}]}
            )
        with pytest.raises(ValueError, match="unknown keys \\['seed'\\]"):
            CampaignSpec.from_dict(
                {"name": "x", "defaults": {"seed": [0]}, "rows": ["path"]}
            )

    def test_explicit_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="empty 'sizes'"):
            CampaignSpec.from_dict(
                {"name": "x", "rows": [{"row": "path", "sizes": []}]}
            )
        with pytest.raises(ValueError, match="empty 'seeds'"):
            CampaignSpec.from_dict(
                {"name": "x", "rows": [{"row": "path", "seeds": []}]}
            )
        with pytest.raises(ValueError, match="empty 'seeds'"):
            CampaignSpec.from_dict(
                {"name": "x", "defaults": {"seeds": []}, "rows": ["path"]}
            )

    def test_job_key_is_content_addressed(self):
        a = JobSpec(row="path", size=64, seed=0)
        b = JobSpec.from_dict({"seed": 0, "size": 64, "row": "path"})
        assert a.key() == b.key()
        assert a.key() != JobSpec(row="path", size=64, seed=1).key()
        assert a.key() != JobSpec(
            row="path", size=64, seed=0, options=(("failure", 0.1),)
        ).key()

    def test_seed_block_jobspec(self):
        block = JobSpec(row="path", size=64, seeds=(0, 1, 2))
        # Per-cell keys use the legacy single-seed payload shape, so a
        # blocked campaign aliases the records single-seed runs wrote.
        assert block.cell_keys() == [
            JobSpec(row="path", size=64, seed=s).key() for s in (0, 1, 2)
        ]
        assert [c.seed for c in block.cells()] == [0, 1, 2]
        assert block.to_dict() == {"row": "path", "size": 64, "seeds": [0, 1, 2]}
        assert JobSpec.from_dict(block.to_dict()) == block
        assert block.with_seeds((1,)).seed == 1
        with pytest.raises(ValueError, match="block"):
            block.seed
        with pytest.raises(ValueError):
            JobSpec(row="path", size=64)  # neither seed nor seeds
        with pytest.raises(ValueError):
            JobSpec.from_dict(
                {"row": "path", "size": 64, "seed": 0, "seeds": [1]}
            )

    def test_jobs_is_per_cell_view_of_job_blocks(self):
        spec = _tiny_spec()
        blocks = list(spec.job_blocks())
        assert [b.seeds for b in blocks] == [(0, 1)]
        assert [j.to_dict() for j in spec.jobs()] == [
            c.to_dict() for b in blocks for c in b.cells()
        ]

    def test_registry_covers_all_cli_rows(self):
        assert set(_TABLE1_ROWS) <= set(ROW_REGISTRY)

    def test_non_int_axis_literals_hash_like_ints(self, tmp_path):
        # JSON configs may carry 8.0 or "8"; keys must match the worker's
        # int-coerced round trip or resume never gets a cache hit.
        float_spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [{"row": "path", "sizes": [16.0], "seeds": ["0"]}],
        })
        int_spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [{"row": "path", "sizes": [16], "seeds": [0]}],
        })
        assert [j.key() for j in float_spec.jobs()] == [
            j.key() for j in int_spec.jobs()
        ]
        store = _store(tmp_path)
        run_campaign(float_spec, store, jobs=1)
        again = run_campaign(float_spec, store, jobs=1)
        assert again.ran == 0 and again.skipped == 1
        assert aggregate_campaign(float_spec, store)["path"][0].n == 16

    def test_overlapping_rows_execute_and_count_once(self, tmp_path):
        from repro.campaign import campaign_status

        spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [
                {"row": "path", "sizes": [8], "seeds": [0]},
                {"row": "path", "sizes": [8, 16], "seeds": [0]},
            ],
        })
        store = _store(tmp_path)
        report = run_campaign(spec, store, jobs=1)
        assert report.total == 2 and report.ok == 2  # not 3
        assert store.line_count() == 2
        point = aggregate_campaign(spec, store)["path"][0]
        assert point.seeds == 1  # the shared cell is not double-counted
        assert campaign_status(spec, store)["path"]["total"] == 2


class TestStore:
    def test_append_load_last_wins(self, tmp_path):
        store = _store(tmp_path)
        store.append({"key": "k1", "job": {}, "status": "error"})
        store.append({"key": "k1", "job": {}, "status": "ok", "result": {}})
        store.append({"key": "k2", "job": {}, "status": "ok", "result": {}})
        assert store.completed_keys() == {"k1", "k2"}
        assert store.line_count() == 3

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = _store(tmp_path)
        store.append({"key": "k1", "job": {}, "status": "ok"})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "stat')  # killed mid-write
        assert store.completed_keys() == {"k1"}

    def test_missing_file_is_empty(self, tmp_path):
        assert _store(tmp_path).load() == {}


class TestRunner:
    def test_half_finished_block_reruns_only_missing_seeds(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [{"row": "bounded", "sizes": [8], "seeds": [0, 1, 2]}],
        })
        store = _store(tmp_path)
        first = run_campaign(spec, store, jobs=1)
        assert first.ok == 3
        # Drop one cell's record: simulate a half-finished blocked run.
        records = [
            r for r in store.load().values() if r["job"]["seed"] != 1
        ]
        with open(store.path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        again = run_campaign(spec, store, jobs=1)
        assert again.ran == 1 and again.skipped == 2 and again.ok == 1
        assert {r["job"]["seed"] for r in store.load().values()} == {0, 1, 2}
        # And the recomputed cell is identical to a fresh serial run.
        fresh = _store(tmp_path / "fresh")
        run_campaign(spec, fresh, jobs=1)
        by_seed = lambda s: {
            r["job"]["seed"]: r["result"] for r in s.load().values()
        }
        assert by_seed(store) == by_seed(fresh)

    def test_blocked_campaign_matches_serial_sweep_aggregates(self, tmp_path):
        from repro.experiments.table1 import registry_row

        spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [{"row": "bounded", "sizes": [8, 12], "seeds": [0, 1, 2]}],
        })
        store = _store(tmp_path)
        assert run_campaign(spec, store, jobs=2).all_ok
        campaign_points = aggregate_campaign(spec, store, extended=False)
        serial_points, _ = registry_row(
            "bounded", sizes=(8, 12), seeds=(0, 1, 2)
        )
        assert [p.__dict__ for p in campaign_points["bounded"]] == [
            p.__dict__ for p in serial_points
        ]

    def test_execution_options_do_not_change_measurements(self, tmp_path):
        from repro.sim.resolution import numpy_available

        base = lambda opts: CampaignSpec.from_dict({
            "name": "x",
            "rows": [{"row": "bounded", "sizes": [8], "seeds": [0, 1],
                      "options": opts}],
        })
        plain_store, fast_store = _store(tmp_path / "a"), _store(tmp_path / "b")
        run_campaign(base({}), plain_store, jobs=1)
        options = {"lockstep": True, "stepping": "slot"}
        if numpy_available():
            options["resolution"] = "numpy"
        run_campaign(base(options), fast_store, jobs=1)
        plain = [r["result"] for r in sorted(
            plain_store.load().values(), key=lambda r: r["job"]["seed"]
        )]
        fast = [r["result"] for r in sorted(
            fast_store.load().values(), key=lambda r: r["job"]["seed"]
        )]
        # The ``soa`` and ``soa_reason_*`` extras keys are execution-path
        # diagnostics (which engine ran the cell, and its dispatch
        # verdict) — they vary with execution options by design.
        # Measurements must still be identical.
        def strip_diagnostics(r):
            extras = r["extras"]
            for key in [k for k in extras if k.startswith("soa_reason_")]:
                del extras[key]
            return extras.pop("soa", None)

        soa_flags = [strip_diagnostics(r) for r in fast]
        for r in plain:
            strip_diagnostics(r)
        assert plain == fast
        assert all(flag in (None, 0.0, 1.0) for flag in soa_flags)

    def test_contention_hist_option_adds_extras(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [{"row": "bounded", "sizes": [8], "seeds": [0],
                      "options": {"contention_hist": True}}],
        })
        store = _store(tmp_path)
        assert run_campaign(spec, store, jobs=1).all_ok
        (record,) = store.ok_records()
        extras = record["result"]["extras"]
        assert extras["ch_active_slots"] > 0
        assert "ch_collision_rate" in extras

    def test_serial_run_and_resume(self, tmp_path):
        spec, store = _tiny_spec(), _store(tmp_path)
        report = run_campaign(spec, store, jobs=1)
        assert report.ok == 2 and report.all_ok
        again = run_campaign(spec, store, jobs=1)
        assert again.ran == 0 and again.skipped == 2
        assert store.line_count() == 2

    def test_parallel_matches_serial(self, tmp_path):
        spec = _tiny_spec()
        serial_store = _store(tmp_path / "serial")
        parallel_store = _store(tmp_path / "parallel")
        run_campaign(spec, serial_store, jobs=1)
        report = run_campaign(spec, parallel_store, jobs=2)
        assert report.all_ok
        serial = aggregate_campaign(spec, serial_store)["bounded"][0]
        parallel = aggregate_campaign(spec, parallel_store)["bounded"][0]
        assert serial.time_median == parallel.time_median
        assert serial.max_energy_median == parallel.max_energy_median
        assert serial.mean_energy_median == parallel.mean_energy_median

    def test_crashing_cell_is_isolated(self, tmp_path, crashing_row):
        spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [
                {"row": crashing_row, "sizes": [4], "seeds": [0]},
                {"row": "bounded", "sizes": [8], "seeds": [0]},
            ],
        })
        store = _store(tmp_path)
        report = run_campaign(spec, store, jobs=1)
        assert report.errors == 1 and report.ok == 1
        records = list(store.load().values())
        failed = [r for r in records if r["status"] == "error"]
        assert len(failed) == 1 and "boom" in failed[0]["error"]

    def test_timeout_kills_only_the_slow_cell(self, tmp_path, sleeping_row):
        spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [
                {"row": sleeping_row, "sizes": [4], "seeds": [0]},
                {"row": "bounded", "sizes": [8], "seeds": [0]},
            ],
        })
        store = _store(tmp_path)
        report = run_campaign(spec, store, jobs=1, timeout=1)
        assert report.timeouts == 1 and report.ok == 1

    def test_failed_cells_retry_on_rerun(self, tmp_path, crashing_row):
        spec = CampaignSpec.from_dict({
            "name": "x", "rows": [{"row": crashing_row, "sizes": [4], "seeds": [0]}]
        })
        store = _store(tmp_path)
        run_campaign(spec, store, jobs=1)
        report = run_campaign(spec, store, jobs=1)
        assert report.ran == 1  # errored cell is not treated as cached

    def test_execute_job_record_shape(self):
        records = execute_job(
            {"job": {"row": "path", "size": 16, "seed": 0}, "timeout": None}
        )
        assert len(records) == 1
        record = records[0]
        assert record["status"] == "ok"
        assert record["key"] == JobSpec(row="path", size=16, seed=0).key()
        assert record["result"]["n"] == 16
        # Records must survive a JSON round-trip unchanged (store contract).
        assert json.loads(json.dumps(record)) == record

    def test_execute_job_block_produces_per_seed_records(self):
        records = execute_job({
            "job": {"row": "path", "size": 16, "seeds": [0, 1]},
            "timeout": None,
        })
        assert [r["status"] for r in records] == ["ok", "ok"]
        # Block records carry per-cell keys + single-seed payloads, so
        # they alias what a single-seed campaign would have stored.
        assert [r["key"] for r in records] == [
            JobSpec(row="path", size=16, seed=0).key(),
            JobSpec(row="path", size=16, seed=1).key(),
        ]
        assert [r["job"]["seed"] for r in records] == [0, 1]
        solo = execute_job(
            {"job": {"row": "path", "size": 16, "seed": 1}, "timeout": None}
        )[0]
        assert records[1]["result"] == solo["result"]


class TestLossyRows:
    def test_loss_rate_blocks_are_sharding_independent(self):
        from repro.campaign.registry import execute_cell_block

        opts = {"loss_rate": 0.4}
        both = execute_cell_block("bounded", 8, (0, 1), opts)
        solo = (
            execute_cell_block("bounded", 8, (0,), opts)
            + execute_cell_block("bounded", 8, (1,), opts)
        )
        assert [c.to_dict() for c in both] == [c.to_dict() for c in solo]

    def test_loss_rate_soa_matches_serial_measurements(self):
        from repro.campaign.registry import execute_cell_block
        from repro.sim.resolution import numpy_available

        if not numpy_available():
            pytest.skip("the SoA lossy path needs numpy")
        opts = {"loss_rate": 0.4}
        serial = execute_cell_block("bounded", 8, (0, 1, 2), opts)
        fast = execute_cell_block(
            "bounded", 8, (0, 1, 2),
            {**opts, "lockstep": True, "resolution": "numpy",
             "stepping": "slot"},
        )
        fast_dicts = [c.to_dict() for c in fast]
        for cell in fast_dicts:
            # The whole block rode the vectorized drop-mask path...
            assert cell["extras"].pop("soa") == 1.0
            assert cell["extras"].pop("soa_reason_ok") == 1.0
        # ...and every measurement matches the serial oracle exactly.
        assert [c.to_dict() for c in serial] == fast_dicts

    def test_loss_rate_rejected_on_custom_cell_rows(self, crashing_row):
        from repro.campaign.registry import execute_cell_block
        from repro.sim.config import ExecutionConfigError

        with pytest.raises(ExecutionConfigError, match="loss_rate"):
            execute_cell_block(crashing_row, 4, (0,), {"loss_rate": 0.1})


@pytest.fixture
def crashing_row():
    def cell(row, size, seed, options):
        raise ValueError("boom")

    name = "_test-crash"
    register_row(RowDefinition(
        name=name, title="crash", model="LOCAL", graph_family="path",
        builder=lambda g, o: None, default_sizes=(4,), default_seeds=(0,),
        custom_cell=cell,
    ))
    yield name
    ROW_REGISTRY.pop(name, None)


@pytest.fixture
def sleeping_row():
    def cell(row, size, seed, options):
        time.sleep(30)

    name = "_test-sleep"
    register_row(RowDefinition(
        name=name, title="sleep", model="LOCAL", graph_family="path",
        builder=lambda g, o: None, default_sizes=(4,), default_seeds=(0,),
        custom_cell=cell,
    ))
    yield name
    ROW_REGISTRY.pop(name, None)


class TestAggregate:
    def _cells(self, values):
        return [
            CellResult(
                label="x", size=8, n=8, max_degree=2, diameter=7, seed=i,
                delivered=True, duration=v, max_energy=v / 2, mean_energy=v / 4,
            )
            for i, v in enumerate(values)
        ]

    def test_extended_stats(self):
        point = aggregate_cells(self._cells([10.0, 20.0, 30.0]), extended=True)
        assert point.time_median == 20.0
        assert point.extras["time_min"] == 10.0
        assert point.extras["time_max"] == 30.0
        assert point.extras["time_stdev"] == 10.0
        assert (
            point.extras["time_ci_lo"]
            <= point.time_median
            <= point.extras["time_ci_hi"]
        )

    def test_flag_extras_aggregate_conjunctively(self):
        # One failing seed must flag the whole group, matching the
        # serial lower-bound runners' AND over seeds.
        cells = self._cells([10.0, 20.0, 30.0])
        for i, ok in enumerate((1.0, 1.0, 0.0)):
            cells[i].extras = {"bound_holds": ok, "lb_ok": ok, "le_time": 5.0 + i}
        point = aggregate_cells(cells)
        assert point.extras["bound_holds"] == 0.0
        assert point.extras["lb_ok"] == 0.0
        assert point.extras["le_time"] == 6.0  # non-flags stay medians

    def test_lb_path_cell_reports_theorem1_bound(self):
        cell = execute_cell("lb-path", 64, 0, {})
        assert cell.extras["lower_bound"] == pytest.approx(6 / 5)
        assert cell.extras["lb_ok"] == 1.0
        assert cell.extras["worst_pre_reception"] >= cell.extras["lower_bound"]

    def test_plain_aggregation_has_no_extended_keys(self):
        point = aggregate_cells(self._cells([10.0, 20.0]))
        assert "time_min" not in point.extras

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            aggregate_cells([])

    def test_bootstrap_ci_deterministic(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        assert bootstrap_median_ci(values, seed=7) == bootstrap_median_ci(
            values, seed=7
        )
        lo, hi = bootstrap_median_ci(values, seed=7)
        assert lo <= hi

    def test_cd_bound_tracks_epsilon_option(self, tmp_path):
        # The Theorem 12 bound divides by epsilon: halving epsilon must
        # double the ratio column for the same measurements.
        spec_for = lambda eps: CampaignSpec.from_dict({
            "name": "x",
            "rows": [{"row": "cd", "sizes": [8], "seeds": [0],
                      "options": {"epsilon": eps}}],
        })
        from repro.campaign.registry import get_row, resolve_bounds

        definition = get_row("cd")
        metric, fn_half = resolve_bounds(definition, {"epsilon": 0.5})["log^2n/llog"]
        _, fn_quarter = resolve_bounds(definition, {"epsilon": 0.25})["log^2n/llog"]
        store = _store(tmp_path)
        run_campaign(spec_for(0.5), store, jobs=1)
        point = aggregate_campaign(spec_for(0.5), store)["cd[epsilon=0.5]"][0]
        assert metric == "energy"
        assert fn_quarter(point) == pytest.approx(2 * fn_half(point))

    def test_serial_table1_rows_share_registry(self):
        # The serial runners are thin wrappers over the registry; a row's
        # table must carry the registry title and bounds columns.
        from repro.experiments.table1 import registry_row

        points, table = registry_row("bounded", sizes=(8,), seeds=(0,))
        assert points[0].n == 8
        assert "Corollary 13" in table and "log n ratio" in table

    def test_option_variants_aggregate_separately(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "x",
            "rows": [
                {"row": "abl-beta", "sizes": [12], "seeds": [0],
                 "options": {"beta": 0.15}},
                {"row": "abl-beta", "sizes": [12], "seeds": [0],
                 "options": {"beta": 0.6}},
            ],
        })
        store = _store(tmp_path)
        assert run_campaign(spec, store, jobs=1).all_ok
        points = aggregate_campaign(spec, store)
        assert set(points) == {"abl-beta[beta=0.15]", "abl-beta[beta=0.6]"}
        assert points["abl-beta[beta=0.15]"][0].extras["lemma14_bound"] == 0.3
        assert points["abl-beta[beta=0.6]"][0].extras["lemma14_bound"] == 1.2
        report = render_report(spec, store)
        assert "beta=0.15" in report and "beta=0.6" in report

    def test_ablation_cell_extras(self):
        cell = execute_cell("abl-beta", 20, 0, {"beta": 0.5})
        assert cell.extras["lemma14_bound"] == 1.0
        assert 0.0 <= cell.extras["edge_cut_rate"] <= 1.0


class TestReportRendering:
    def test_status_and_report(self, tmp_path):
        spec, store = _tiny_spec(), _store(tmp_path)
        status = render_status(spec, store)
        assert "0/2 cells complete" in status and "2 pending" in status
        assert "(no completed cells)" in render_report(spec, store)
        run_campaign(spec, store, jobs=1)
        assert "2/2 cells complete" in render_status(spec, store)
        report = render_report(spec, store)
        assert "Corollary 13" in report and "log n ratio" in report


class TestCampaignCLI:
    def _config(self, tmp_path):
        path = os.path.join(str(tmp_path), "config.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"name": "cli", "rows": [
                    {"row": "path", "sizes": [16], "seeds": [0, 1]}
                ]},
                handle,
            )
        return path

    def test_run_status_report(self, tmp_path, capsys):
        from repro.cli import main

        config = self._config(tmp_path)
        out = os.path.join(str(tmp_path), "out")
        assert main(["campaign", "run", config, "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "2 computed" in stdout and "Thm 21" in stdout
        assert main(["campaign", "status", config, "--out", out]) == 0
        assert "2/2 cells complete" in capsys.readouterr().out
        assert main(["campaign", "report", config, "--out", out]) == 0
        assert "2n time ratio" in capsys.readouterr().out

    def test_run_twice_appends_nothing(self, tmp_path, capsys):
        from repro.cli import main

        config = self._config(tmp_path)
        out = os.path.join(str(tmp_path), "out")
        main(["campaign", "run", config, "--out", out])
        store = CampaignStore(os.path.join(out, "results.jsonl"))
        before = store.line_count()
        assert main(["campaign", "run", config, "--out", out]) == 0
        capsys.readouterr()
        assert store.line_count() == before

    def test_shipped_configs_parse_and_validate(self):
        here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        for name in ("table1.json", "ablations.json", "smoke.json"):
            spec = CampaignSpec.from_json_file(
                os.path.join(here, "configs", name)
            )
            spec.validate()
            assert list(spec.jobs())

    def test_smoke_config_is_two_cells(self):
        here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        spec = CampaignSpec.from_json_file(
            os.path.join(here, "configs", "smoke.json")
        )
        assert len(list(spec.jobs())) == 2


class TestTable1Passthrough:
    def test_seeds_and_scale_flags(self, capsys):
        from repro.cli import main

        code = main(
            ["table1", "bounded", "--seeds", "1", "--sizes-scale", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Default sizes (8, 12, 16) scaled by 0.5 -> (4, 6, 8).
        assert "\n4  " in out and "\n8  " in out and "\n16 " not in out

    def test_scale_applies_to_ks_rows(self, capsys):
        from repro.cli import main

        assert main(
            ["table1", "lb-reduction", "--seeds", "1", "--sizes-scale", "0.5"]
        ) == 0
        assert "K_{2,k}" in capsys.readouterr().out

    def test_contention_hist_flag(self, capsys):
        from repro.cli import main

        # Registry-backed row: runs with the observer attached and the
        # ch_* columns rendered.
        assert main(
            ["table1", "bounded", "--seeds", "1",
             "--sizes-scale", "0.5", "--contention-hist"]
        ) == 0
        out = capsys.readouterr().out
        assert "Corollary 13" in out and "ch_mean_load" in out
        # Bespoke lower-bound rows cannot fold the histogram anywhere,
        # so the flag fails loudly there instead of being dropped
        # (tests/test_exec_config.py pins the same contract).
        assert main(
            ["table1", "lb-reduction", "--seeds", "1",
             "--sizes-scale", "0.5", "--contention-hist"]
        ) == 2
        assert "contention_hist" in capsys.readouterr().out

    def test_campaign_contention_hist_changes_cell_identity(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        config = os.path.join(str(tmp_path), "config.json")
        with open(config, "w", encoding="utf-8") as handle:
            json.dump(
                {"name": "cli", "rows": [
                    {"row": "bounded", "sizes": [8], "seeds": [0]}
                ]},
                handle,
            )
        out = os.path.join(str(tmp_path), "out")
        assert main(
            ["campaign", "run", config, "--out", out, "--contention-hist"]
        ) == 0
        capsys.readouterr()
        # status WITH the flag sees the completed cell ...
        assert main(
            ["campaign", "status", config, "--out", out, "--contention-hist"]
        ) == 0
        assert "1/1 cells complete" in capsys.readouterr().out
        # ... status WITHOUT it addresses different cells (still pending).
        assert main(["campaign", "status", config, "--out", out]) == 0
        assert "0/1 cells complete" in capsys.readouterr().out
