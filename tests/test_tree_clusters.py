"""Tests for the Section 7 colored tree transmissions."""

from __future__ import annotations

import random

import pytest

from repro.core.tree_clusters import (
    TreeParams,
    learn_ind,
    sample_colors,
    tree_down_cast,
    tree_downward,
    tree_up_cast,
    tree_upward,
)
from repro.graphs import Graph, path_graph, star_graph
from repro.sim import CD, Simulator


def _colors_for(graph, params, seed=42, distinct=True):
    """Assign color tuples; with distinct=True force pairwise-distinct
    per-coloring colors so Ind always exists (test determinism)."""
    rng = random.Random(seed)
    if not distinct:
        return {v: sample_colors(rng, params) for v in range(graph.n)}
    colors = {}
    for v in range(graph.n):
        colors[v] = tuple(
            (v * 7 + j) % params.num_colors for j in range(params.num_colorings)
        )
    return colors


class TestLearnIndAndDownward:
    def test_path_chain_parents(self):
        # Path 0-1-2 rooted at 0: 1's parent is 0, 2's parent is 1.
        g = path_graph(3)
        params = TreeParams.for_graph(g.n, 2, xi=1.0)
        colors = _colors_for(g, params)
        parents = {0: None, 1: 0, 2: 1}

        def proto(ctx):
            parent = parents[ctx.index]
            parent_colors = colors[parent] if parent is not None else None
            ind = yield from learn_ind(ctx, params, colors[ctx.index], parent_colors)
            return ind

        result = Simulator(g, CD, seed=0).run(proto)
        assert result.outputs[0] is None
        assert result.outputs[1] is not None
        assert result.outputs[2] is not None

    def test_downward_delivers_to_children_only(self):
        g = star_graph(4)
        params = TreeParams.for_graph(g.n, g.max_degree, xi=1.0)
        colors = _colors_for(g, params)

        def proto(ctx):
            if ctx.index == 0:
                out = yield from tree_downward(
                    ctx, params, colors[0], None, None, "m", False
                )
            else:
                ind = 0  # colors are distinct by construction
                out = yield from tree_downward(
                    ctx, params, colors[ctx.index], colors[0], ind, None, True
                )
            return out

        result = Simulator(g, CD, seed=1).run(proto)
        assert result.outputs[1:] == ["m", "m", "m"]

    def test_downward_sender_energy_is_c(self):
        g = path_graph(2)
        params = TreeParams.for_graph(g.n, 2, xi=1.0)
        colors = _colors_for(g, params)

        def proto(ctx):
            if ctx.index == 0:
                yield from tree_downward(
                    ctx, params, colors[0], None, None, "m", False
                )
            else:
                yield from tree_downward(
                    ctx, params, colors[1], colors[0], 0, None, True
                )
            return None

        result = Simulator(g, CD, seed=0).run(proto)
        assert result.energy[0].total == params.num_colorings
        assert result.energy[1].total == 1  # one tuned listen


class TestUpward:
    def test_parent_receives_from_contending_children(self):
        g = star_graph(5)
        params = TreeParams.for_graph(g.n, g.max_degree, xi=1.0, failure=0.02)
        colors = _colors_for(g, params)

        def proto(ctx):
            if ctx.index == 0:
                out = yield from tree_upward(
                    ctx, params, colors[0], None, None, None, True
                )
            else:
                out = yield from tree_upward(
                    ctx, params, colors[ctx.index], colors[0], 0,
                    f"c{ctx.index}", False,
                )
            return out

        delivered = 0
        for seed in range(5):
            result = Simulator(g, CD, seed=seed).run(proto)
            if result.outputs[0] in ("c1", "c2", "c3", "c4"):
                delivered += 1
        assert delivered >= 4

    def test_bystander_energy_small(self):
        # A parent with no sending children pays only probe-level energy.
        g = path_graph(3)  # 0-1-2; 0 listens, 2 sends to parent 1... none
        params = TreeParams.for_graph(g.n, 2, xi=1.0, failure=0.05)
        colors = _colors_for(g, params)

        def proto(ctx):
            if ctx.index == 0:
                out = yield from tree_upward(
                    ctx, params, colors[0], None, None, None, True
                )
                return out
            yield from tree_upward(
                ctx, params, colors[ctx.index], None, None, None, False
            )
            return None

        result = Simulator(g, CD, seed=0).run(proto)
        # listener probes c blocks at <= 2 energy each.
        assert result.energy[0].total <= 2 * params.num_colorings


class TestTreeCasts:
    def test_down_cast_washes_down_chain(self):
        g = path_graph(4)
        params = TreeParams.for_graph(g.n, 2, xi=1.0)
        colors = _colors_for(g, params)
        layers = [0, 1, 2, 3]
        parents = {0: None, 1: 0, 2: 1, 3: 2}

        def proto(ctx):
            parent = parents[ctx.index]
            value = "m" if ctx.index == 0 else None
            out = yield from tree_down_cast(
                ctx, params, layers[ctx.index], value, 4,
                colors[ctx.index],
                colors[parent] if parent is not None else None,
                0 if parent is not None else None,
                transform=lambda m: m,
            )
            return out

        result = Simulator(g, CD, seed=0).run(proto)
        assert result.outputs == ["m"] * 4

    def test_up_cast_reaches_root(self):
        g = path_graph(3)
        params = TreeParams.for_graph(g.n, 2, xi=1.0, failure=0.02)
        colors = _colors_for(g, params)
        layers = [0, 1, 2]
        parents = {0: None, 1: 0, 2: 1}

        def proto(ctx):
            parent = parents[ctx.index]
            value = "leaf" if ctx.index == 2 else None
            out = yield from tree_up_cast(
                ctx, params, layers[ctx.index], value, 3,
                colors[ctx.index],
                colors[parent] if parent is not None else None,
                0 if parent is not None else None,
                transform=lambda m: m,
            )
            return out

        delivered = sum(
            Simulator(g, CD, seed=s).run(proto).outputs[0] == "leaf"
            for s in range(4)
        )
        assert delivered >= 3
