"""Tests for the graph substrate (topologies + properties)."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    Graph,
    bfs_distances,
    bfs_layers,
    binary_tree,
    caterpillar,
    clique,
    cycle_graph,
    diameter,
    distance,
    eccentricity,
    grid_graph,
    is_connected,
    k2k_gadget,
    lollipop,
    path_graph,
    random_gnp,
    random_regular,
    random_tree,
    star_graph,
)


class TestGraphBasics:
    def test_dedup_and_sorted_adjacency(self):
        g = Graph(3, [(0, 1), (1, 0), (2, 1)])
        assert g.edges == ((0, 1), (1, 2))
        assert g.neighbors(1) == (0, 2)

    def test_rejects_self_loops_and_bad_edges(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 0)])
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])
        with pytest.raises(ValueError):
            Graph(0, [])

    def test_degree_and_max_degree(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert g.degree(3) == 1
        assert g.max_degree == 4

    def test_neighbor_masks_match_adjacency(self):
        g = random_gnp(12, 0.4, random.Random(3))
        for v in range(g.n):
            mask = g.neighbor_mask(v)
            assert mask == sum(1 << w for w in g.neighbors(v))
            assert not (mask >> v) & 1  # never contains the vertex itself
        # cached: same tuple object on every call
        assert g.neighbor_masks() is g.neighbor_masks()

    def test_csr_matches_adjacency(self):
        g = random_gnp(10, 0.5, random.Random(7))
        indptr, indices = g.csr()
        assert len(indptr) == g.n + 1
        assert indptr[0] == 0
        for v in range(g.n):
            assert tuple(indices[indptr[v]:indptr[v + 1]]) == g.neighbors(v)
        assert g.csr() is g.csr()  # cached

    def test_masks_and_csr_on_edgeless_graph(self):
        g = Graph(3, [])
        assert g.neighbor_masks() == (0, 0, 0)
        indptr, indices = g.csr()
        assert list(indptr) == [0, 0, 0, 0]
        assert len(indices) == 0

    def test_has_edge_small_and_large_adjacency(self):
        g = clique(12)
        assert g.has_edge(0, 11)
        assert not g.has_edge(0, 0) if True else None
        p = path_graph(4)
        assert p.has_edge(1, 2)
        assert not p.has_edge(0, 3)


class TestTopologies:
    def test_path(self):
        g = path_graph(5)
        assert len(g.edges) == 4
        assert diameter(g) == 4
        assert g.max_degree == 2

    def test_cycle(self):
        g = cycle_graph(8)
        assert len(g.edges) == 8
        assert diameter(g) == 4
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_clique(self):
        g = clique(6)
        assert len(g.edges) == 15
        assert diameter(g) == 1

    def test_k2k_gadget(self):
        g, s, t = k2k_gadget(4)
        assert g.n == 6
        assert not g.has_edge(s, t)
        assert all(g.has_edge(s, v) and g.has_edge(t, v) for v in range(2, 6))
        assert diameter(g) == 2
        assert g.max_degree == 4

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert diameter(g) == 5
        assert g.max_degree == 4

    def test_star(self):
        assert diameter(star_graph(7)) == 2

    def test_random_tree_connected_acyclic(self):
        g = random_tree(40, random.Random(3))
        assert is_connected(g)
        assert len(g.edges) == 39

    def test_random_gnp_connected(self):
        g = random_gnp(30, 0.05, random.Random(1))
        assert is_connected(g)

    def test_random_regular_degree_bound(self):
        g = random_regular(20, 4, random.Random(2))
        assert is_connected(g)
        assert g.max_degree <= 6  # patched graphs may exceed d slightly

    def test_caterpillar(self):
        g = caterpillar(5, 3)
        assert g.n == 20
        assert g.max_degree >= 4
        assert is_connected(g)

    def test_lollipop(self):
        g = lollipop(5, 10)
        assert g.n == 15
        assert diameter(g) == 11

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.n == 15
        assert g.max_degree == 3
        assert diameter(g) == 6


class TestProperties:
    def test_bfs_distances_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]
        assert distance(g, 0, 4) == 4

    def test_bfs_layers(self):
        g = star_graph(4)
        layers = bfs_layers(g, 0)
        assert layers[0] == [0]
        assert sorted(layers[1]) == [1, 2, 3]

    def test_eccentricity_disconnected_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            eccentricity(g, 0)

    def test_diameter_single_vertex(self):
        assert diameter(Graph(1, [])) == 0

    def test_diameter_sampled_lower_bound(self):
        g = path_graph(30)
        approx = diameter(g, exact=False, sample=4)
        assert approx <= diameter(g)
        assert approx >= 26  # sampled from one end of the path

    def test_is_connected(self):
        assert is_connected(path_graph(4))
        assert not is_connected(Graph(4, [(0, 1), (2, 3)]))
