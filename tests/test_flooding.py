"""Tests for the baseline broadcast algorithms."""

from __future__ import annotations

import pytest

from repro.broadcast import (
    decay_broadcast_protocol,
    local_flood_protocol,
    run_broadcast,
)
from repro.broadcast.flooding import decay_broadcast_slots
from repro.graphs import grid_graph, path_graph, star_graph
from repro.sim import CD, LOCAL, NO_CD, Knowledge

from tests.conftest import knowledge_for


class TestLocalFlood:
    def test_time_is_diameter_plus_one(self):
        g = path_graph(10)
        out = run_broadcast(
            g, LOCAL, local_flood_protocol(), knowledge=knowledge_for(g), seed=0
        )
        assert out.delivered
        assert out.duration <= g.n  # D + 1 rounds of 1 slot

    def test_energy_grows_with_distance(self):
        # The flaw the paper fixes: far vertices listen from slot 0.
        g = path_graph(12)
        out = run_broadcast(
            g, LOCAL, local_flood_protocol(), knowledge=knowledge_for(g), seed=0
        )
        energies = [e.total for e in out.sim.energy]
        assert energies[-1] > energies[1]
        assert energies[-1] >= 11  # listened ~D slots

    def test_every_vertex_transmits_at_most_once(self):
        g = grid_graph(3, 4)
        out = run_broadcast(
            g, LOCAL, local_flood_protocol(), knowledge=knowledge_for(g), seed=0
        )
        assert all(e.sends <= 1 for e in out.sim.energy)


class TestDecayBroadcast:
    @pytest.mark.parametrize("model", [NO_CD, CD])
    def test_delivers_in_both_models(self, model):
        g = grid_graph(3, 3)
        out = run_broadcast(
            g, model, decay_broadcast_protocol(failure=0.01),
            knowledge=knowledge_for(g), seed=1,
        )
        assert out.delivered

    def test_star_high_contention(self):
        g = star_graph(17)
        out = run_broadcast(
            g, NO_CD, decay_broadcast_protocol(failure=0.01),
            knowledge=knowledge_for(g), seed=2,
        )
        assert out.delivered

    def test_relay_rounds_cap_reduces_sender_energy(self):
        g = path_graph(10)
        k = knowledge_for(g)
        unlimited = run_broadcast(
            g, NO_CD, decay_broadcast_protocol(failure=0.01),
            knowledge=k, seed=3,
        )
        capped = run_broadcast(
            g, NO_CD, decay_broadcast_protocol(failure=0.01, relay_rounds=4),
            knowledge=k, seed=3,
        )
        assert capped.delivered
        assert (
            max(e.sends for e in capped.sim.energy)
            <= max(e.sends for e in unlimited.sim.energy)
        )

    def test_slot_budget_estimate_matches_runtime(self):
        g = path_graph(8)
        k = knowledge_for(g)
        out = run_broadcast(
            g, NO_CD, decay_broadcast_protocol(failure=0.05),
            knowledge=k, seed=0,
        )
        assert out.duration <= decay_broadcast_slots(
            g.n, 2, g.n - 1, 0.05
        )

    def test_unknown_diameter_falls_back_to_n(self):
        g = path_graph(6)
        k = Knowledge(n=6, max_degree=2, diameter=None)
        out = run_broadcast(
            g, NO_CD, decay_broadcast_protocol(failure=0.02), knowledge=k, seed=0
        )
        assert out.delivered
