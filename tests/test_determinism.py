"""Determinism contracts the campaign cache depends on.

The store keys cells by a content hash of the job *spec*, not the
result — so caching is only sound if the same (graph, model, seed)
always reproduces the same measurements.  These tests pin that down
at the simulator level and at the campaign level.
"""

from __future__ import annotations

import json
import os

from repro.broadcast import decay_broadcast_protocol
from repro.broadcast.path import path_broadcast_protocol
from repro.campaign import CampaignSpec, CampaignStore, execute_job, run_campaign
from repro.graphs import path_graph, random_gnp
from repro.sim import LOCAL, NO_CD, Knowledge, Simulator


def _run(graph, model, protocol_factory, seed, knowledge):
    return Simulator(graph, model, seed=seed, knowledge=knowledge).run(
        protocol_factory, inputs={0: {"source": True, "payload": "m"}}
    )


def _assert_identical(first, second):
    assert first.outputs == second.outputs
    assert first.energy == second.energy
    assert first.finish_slot == second.finish_slot
    assert first.duration == second.duration


class TestSimulatorDeterminism:
    def test_path_protocol_identical_across_runs(self):
        graph = path_graph(32)
        knowledge = Knowledge(n=32, max_degree=2, diameter=31)
        for seed in (0, 1, 7):
            first = _run(
                graph, LOCAL, path_broadcast_protocol(oriented=True),
                seed, knowledge,
            )
            second = _run(
                graph, LOCAL, path_broadcast_protocol(oriented=True),
                seed, knowledge,
            )
            _assert_identical(first, second)

    def test_randomized_protocol_identical_across_runs(self):
        import random

        graph = random_gnp(12, 0.3, random.Random(12))
        knowledge = Knowledge(n=12, max_degree=graph.max_degree, diameter=4)
        first = _run(graph, NO_CD, decay_broadcast_protocol(0.02), 3, knowledge)
        second = _run(graph, NO_CD, decay_broadcast_protocol(0.02), 3, knowledge)
        _assert_identical(first, second)

    def test_different_seeds_allowed_to_differ(self):
        import random

        graph = random_gnp(12, 0.3, random.Random(12))
        knowledge = Knowledge(n=12, max_degree=graph.max_degree, diameter=4)
        a = _run(graph, NO_CD, decay_broadcast_protocol(0.02), 0, knowledge)
        b = _run(graph, NO_CD, decay_broadcast_protocol(0.02), 1, knowledge)
        # Not a hard requirement, but if every seed were identical the
        # seeds axis of the campaign matrix would be meaningless.
        assert a.energy != b.energy or a.duration != b.duration


class TestCampaignDeterminism:
    def test_cell_payload_byte_identical(self):
        payload = {"job": {"row": "decay", "size": 16, "seed": 2}}
        first = execute_job(payload)[0]
        second = execute_job(payload)[0]
        assert first["status"] == second["status"] == "ok"
        assert json.dumps(first["result"], sort_keys=True) == json.dumps(
            second["result"], sort_keys=True
        )

    def test_rerun_adds_zero_store_entries(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "det",
            "rows": [
                {"row": "bounded", "sizes": [8], "seeds": [0, 1]},
                {"row": "lb-reduction", "sizes": [2, 4], "seeds": [0]},
            ],
        })
        store = CampaignStore(os.path.join(str(tmp_path), "results.jsonl"))
        first = run_campaign(spec, store, jobs=1)
        assert first.all_ok and first.ok == 4
        lines = store.line_count()
        second = run_campaign(spec, store, jobs=2)
        assert second.ran == 0 and second.skipped == 4
        assert store.line_count() == lines
