"""Tests for single-hop primitives (leader election, counting)."""

from __future__ import annotations

import math

import pytest

from repro.graphs import clique
from repro.sim import CD, CD_FD, Simulator
from repro.singlehop import (
    approximate_count_cd_protocol,
    deterministic_le_cd_protocol,
    uniform_le_cd_protocol,
)


class TestUniformLeaderElection:
    @pytest.mark.parametrize("n", [2, 5, 16, 48])
    def test_elects_unique_leader(self, n):
        wins = 0
        for seed in range(6):
            result = Simulator(clique(n), CD_FD, seed=seed).run(
                uniform_le_cd_protocol()
            )
            outcomes = set(result.outputs)
            if len(outcomes) == 1 and None not in outcomes:
                wins += 1
        assert wins >= 5

    def test_time_is_sublogarithmic_ish(self):
        # O(log log n) + exponential tail: even n = 256 should elect in
        # far fewer slots than log2(n) on most seeds.
        durations = []
        for seed in range(8):
            result = Simulator(clique(64), CD_FD, seed=seed).run(
                uniform_le_cd_protocol()
            )
            durations.append(result.duration)
        durations.sort()
        assert durations[len(durations) // 2] <= 16

    def test_single_station(self):
        result = Simulator(clique(2), CD_FD, seed=0).run(uniform_le_cd_protocol())
        assert len(set(result.outputs)) == 1


class TestDeterministicLeaderElection:
    def test_elects_minimum_id(self):
        uids = [5, 3, 9, 1, 7, 2, 8, 6, 4]
        result = Simulator(clique(9), CD, seed=0, uids=uids).run(
            deterministic_le_cd_protocol(id_space=9)
        )
        assert set(result.outputs) == {1}

    def test_energy_logarithmic_in_id_space(self):
        n, space = 8, 64
        uids = [8 * i + 1 for i in range(n)]
        result = Simulator(clique(n), CD, seed=0, uids=uids).run(
            deterministic_le_cd_protocol(id_space=space)
        )
        assert set(result.outputs) == {1}
        bits = math.ceil(math.log2(space))
        assert all(e.total <= 3 * bits + 4 for e in result.energy)

    def test_reproducible_across_seeds(self):
        a = Simulator(clique(6), CD, seed=1).run(deterministic_le_cd_protocol())
        b = Simulator(clique(6), CD, seed=7).run(deterministic_le_cd_protocol())
        assert a.outputs == b.outputs
        assert a.duration == b.duration


class TestApproximateCounting:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_constant_factor_estimate(self, n):
        good = 0
        for seed in range(5):
            result = Simulator(clique(n), CD_FD, seed=seed).run(
                approximate_count_cd_protocol()
            )
            estimate = result.outputs[0]
            if n / 4 <= estimate <= 4 * n:
                good += 1
        assert good >= 4

    def test_all_stations_agree(self):
        result = Simulator(clique(32), CD_FD, seed=3).run(
            approximate_count_cd_protocol()
        )
        assert len(set(result.outputs)) == 1
