"""Tests for the deterministic algorithms (Appendix A)."""

from __future__ import annotations

import pytest

from repro.broadcast import run_broadcast
from repro.broadcast.deterministic import (
    det_cd_broadcast_protocol,
    det_local_broadcast_protocol,
)
from repro.core.det_tree import (
    DetCDScheme,
    det_downward,
    det_upward,
    downward_slots,
    upward_slots,
)
from repro.graphs import Graph, cycle_graph, grid_graph, path_graph, star_graph
from repro.sim import CD, LOCAL, Knowledge, Simulator

from tests.conftest import knowledge_for


def _det_knowledge(g):
    return knowledge_for(g, id_space=g.n)


class TestDetTreeTransmissions:
    def test_downward_parent_to_children(self):
        # Star: center (uid 1) is parent of all leaves.
        g = star_graph(4)
        id_space = 4

        def proto(ctx):
            if ctx.index == 0:
                out = yield from det_downward(ctx, None, "m", False, id_space)
            else:
                out = yield from det_downward(ctx, 1, None, True, id_space)
            return out

        result = Simulator(g, CD, seed=0).run(proto)
        assert result.outputs[1:] == ["m", "m", "m"]

    def test_downward_zero_failure_with_contending_parents(self):
        # Two parents (0, 2) with children (1, 3): reserved intervals keep
        # the transmissions collision-free deterministically.
        g = Graph(4, [(0, 1), (2, 3), (1, 3)])
        id_space = 4

        def proto(ctx):
            if ctx.index in (0, 2):
                out = yield from det_downward(
                    ctx, None, f"m{ctx.index}", False, id_space
                )
            else:
                parent_uid = 1 if ctx.index == 1 else 3
                out = yield from det_downward(ctx, parent_uid, None, True, id_space)
            return out

        result = Simulator(g, CD, seed=0).run(proto)
        assert result.outputs[1] == "m0"
        assert result.outputs[3] == "m2"

    def test_upward_parent_receives_min_child(self):
        g = star_graph(5)
        id_space = 5

        def proto(ctx):
            if ctx.index == 0:
                out = yield from det_upward(ctx, None, None, True, id_space)
            else:
                out = yield from det_upward(
                    ctx, 1, f"c{ctx.uid}", False, id_space
                )
            return out

        result = Simulator(g, CD, seed=0).run(proto)
        child_uid, message = result.outputs[0]
        assert child_uid == 2  # minimum child ID
        assert message == "c2"

    def test_upward_energy_logarithmic(self):
        g = star_graph(5)
        id_space = 5

        def proto(ctx):
            if ctx.index == 0:
                out = yield from det_upward(ctx, None, None, True, id_space)
            else:
                out = yield from det_upward(ctx, 1, "x", False, id_space)
            return out

        result = Simulator(g, CD, seed=0).run(proto)
        assert result.duration <= upward_slots(id_space)
        # O(log N) energy per vertex per grid.
        assert all(e.total <= 4 * 3 + 6 for e in result.energy)

    def test_det_scheme_casts_roundtrip(self):
        # DetCDScheme should drive the generic casts deterministically.
        from repro.core.casts import down_cast

        g = path_graph(4)
        scheme = DetCDScheme(4)
        labels = [0, 1, 2, 3]

        def proto(ctx):
            value = "m" if ctx.index == 0 else None
            out = yield from down_cast(
                ctx, scheme, labels[ctx.index], value, 4
            )
            return out

        result = Simulator(g, CD, seed=0).run(proto)
        assert result.outputs == ["m"] * 4


class TestDeterministicLocal:
    @pytest.mark.parametrize("maker", [
        lambda: path_graph(8),
        lambda: cycle_graph(9),
        lambda: grid_graph(3, 3),
    ])
    def test_delivers(self, maker):
        g = maker()
        out = run_broadcast(
            g, LOCAL, det_local_broadcast_protocol(),
            knowledge=_det_knowledge(g), seed=0,
        )
        assert out.delivered

    def test_deterministic_reproducibility(self):
        # Same graph, same IDs -> identical durations and energies across
        # different seeds (no randomness used).
        g = cycle_graph(8)
        k = _det_knowledge(g)
        a = run_broadcast(g, LOCAL, det_local_broadcast_protocol(), knowledge=k, seed=1)
        b = run_broadcast(g, LOCAL, det_local_broadcast_protocol(), knowledge=k, seed=99)
        assert a.duration == b.duration
        assert [e.total for e in a.sim.energy] == [e.total for e in b.sim.energy]

    def test_id_permutation_changes_schedule_not_correctness(self):
        g = path_graph(6)
        k = _det_knowledge(g)
        out = run_broadcast(
            g, LOCAL, det_local_broadcast_protocol(), knowledge=k,
            uids=[4, 2, 6, 1, 5, 3], seed=0,
        )
        assert out.delivered


class TestDeterministicCD:
    @pytest.mark.parametrize("maker", [
        lambda: path_graph(6),
        lambda: cycle_graph(6),
        lambda: star_graph(5),
    ])
    def test_delivers(self, maker):
        g = maker()
        out = run_broadcast(
            g, CD, det_cd_broadcast_protocol(),
            knowledge=_det_knowledge(g), seed=0,
        )
        assert out.delivered

    def test_deterministic_reproducibility(self):
        g = path_graph(5)
        k = _det_knowledge(g)
        a = run_broadcast(g, CD, det_cd_broadcast_protocol(), knowledge=k, seed=1)
        b = run_broadcast(g, CD, det_cd_broadcast_protocol(), knowledge=k, seed=2)
        assert a.duration == b.duration
        assert [e.total for e in a.sim.energy] == [e.total for e in b.sim.energy]

    def test_energy_well_below_time(self):
        g = cycle_graph(6)
        out = run_broadcast(
            g, CD, det_cd_broadcast_protocol(),
            knowledge=_det_knowledge(g), seed=0,
        )
        assert out.delivered
        assert out.max_energy * 20 < out.duration

    def test_nonzero_source(self):
        g = grid_graph(2, 3)
        out = run_broadcast(
            g, CD, det_cd_broadcast_protocol(),
            knowledge=_det_knowledge(g), source=3, seed=0,
        )
        assert out.delivered
