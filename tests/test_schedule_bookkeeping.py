"""Slot-budget bookkeeping: predicted schedule lengths must equal actual
slot consumption exactly — this is the fixed-frame synchronization
contract that lets composed protocols stay aligned without barriers."""

from __future__ import annotations

import pytest

from repro.core.clustering import refine_labeling, refine_slots
from repro.core.casts import all_cast, cast_sequence_slots, down_cast, up_cast
from repro.core.schemes import SRScheme
from repro.core.sr_comm import (
    CDParams,
    DecayParams,
    Role,
    det_frame_length,
    sr_cd,
    sr_det_cd,
    sr_nocd,
)
from repro.graphs import path_graph
from repro.sim import CD, LOCAL, NO_CD, Simulator


def _consumed(graph, model, proto_factory):
    """Run and return each node's final ctx.time (slots consumed)."""

    result = Simulator(graph, model, seed=0).run(proto_factory)
    return result.outputs


class TestFrameLengths:
    @pytest.mark.parametrize("delta,failure", [(2, 0.05), (16, 0.01), (100, 0.2)])
    def test_decay_frame_exact(self, delta, failure):
        params = DecayParams.for_graph(delta, failure)
        g = path_graph(2)

        def proto(ctx):
            role = Role.SENDER if ctx.index == 0 else Role.RECEIVER
            yield from sr_nocd(ctx, role, "m", params)
            return ctx.time

        assert set(_consumed(g, NO_CD, proto)) == {params.frame_length}

    @pytest.mark.parametrize("probe,ack", [(False, False), (True, False),
                                           (False, True), (True, True)])
    def test_cd_frame_exact(self, probe, ack):
        params = CDParams.for_graph(8, 0.05, probe=probe, ack=ack)
        g = path_graph(3)
        roles = {0: Role.SENDER, 1: Role.RECEIVER, 2: Role.IDLE}

        def proto(ctx):
            yield from sr_cd(ctx, roles[ctx.index], "m", params)
            return ctx.time

        assert set(_consumed(g, CD, proto)) == {params.frame_length}

    @pytest.mark.parametrize("space", [2, 8, 19, 64])
    def test_det_frame_exact(self, space):
        g = path_graph(3)
        roles = {0: Role.SENDER, 1: Role.RECEIVER, 2: Role.IDLE}

        def proto(ctx):
            value = 1 if roles[ctx.index] is Role.SENDER else None
            yield from sr_det_cd(ctx, roles[ctx.index], value, space)
            return ctx.time

        assert set(_consumed(g, CD, proto)) == {det_frame_length(space)}


class TestCastBudgets:
    @pytest.mark.parametrize("model,name", [(LOCAL, "LOCAL"), (NO_CD, "No-CD")])
    def test_sweep_budget(self, model, name):
        g = path_graph(4)
        scheme = SRScheme(name, 2, failure=0.05)
        max_layers = 4
        expected = (max_layers - 1) * scheme.frame_length

        def proto(ctx):
            yield from down_cast(
                ctx, scheme, ctx.index, "m" if ctx.index == 0 else None,
                max_layers,
            )
            return ctx.time

        assert set(_consumed(g, model, proto)) == {expected}

    def test_up_cast_budget_matches_down(self):
        g = path_graph(4)
        scheme = SRScheme("LOCAL", 2)
        max_layers = 4

        def proto(ctx):
            yield from up_cast(
                ctx, scheme, ctx.index, "m" if ctx.index == 3 else None,
                max_layers,
            )
            t1 = ctx.time
            yield from all_cast(ctx, scheme, None)
            return (t1, ctx.time)

        outs = _consumed(g, LOCAL, proto)
        assert len({o[0] for o in outs}) == 1
        assert all(o[1] - o[0] == scheme.frame_length for o in outs)

    def test_cast_sequence_slots_formula(self):
        scheme = SRScheme("LOCAL", 4)
        # one up + r*(down+all+up) + one down over L layers
        assert cast_sequence_slots(scheme, 5, 2) == 4 + 2 * (2 * 4 + 1) + 4


class TestRefineBudget:
    @pytest.mark.parametrize("spread_s", [1, 3])
    def test_refine_slots_exact(self, spread_s):
        g = path_graph(4)
        scheme = SRScheme("LOCAL", 2)
        max_layers = 4
        expected = refine_slots(scheme, spread_s, max_layers)

        def proto(ctx):
            yield from refine_labeling(
                ctx, scheme, 0, survive_p=0.5, spread_s=spread_s,
                max_layers=max_layers,
            )
            return ctx.time

        assert set(_consumed(g, LOCAL, proto)) == {expected}

    def test_refine_slots_nocd(self):
        g = path_graph(3)
        scheme = SRScheme("No-CD", 2, failure=0.1)
        expected = refine_slots(scheme, 1, 3)

        def proto(ctx):
            yield from refine_labeling(
                ctx, scheme, 0, survive_p=0.5, spread_s=1, max_layers=3
            )
            return ctx.time

        assert set(_consumed(g, NO_CD, proto)) == {expected}
