"""Property-based tests (hypothesis) on core invariants.

Invariants covered:
* engine: energy meters equal the count of active slots in the trace;
  duration equals the last active slot + 1; protocols consuming the same
  schedule finish at the same slot (fixed-frame contract).
* labelings: BFS layers always form a good labeling; refinement output is
  always good in LOCAL.
* decay/CD frame geometry: monotone in the failure parameter.
* deterministic SR: the receiver's learned minimum matches ground truth
  for arbitrary value assignments.
* blocking-time distribution support.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import is_good_labeling
from repro.core.sr_comm import (
    CDParams,
    DecayParams,
    Role,
    det_frame_length,
    sr_det_cd,
)
from repro.graphs import Graph, bfs_distances, path_graph, random_tree, star_graph
from repro.sim import CD, NO_CD, ExecutionConfig, Idle, Listen, Send, Simulator


# --- engine invariants ------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    plan=st.lists(
        st.tuples(st.sampled_from(["send", "listen", "idle"]),
                  st.integers(min_value=1, max_value=5)),
        min_size=1, max_size=8,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_energy_equals_active_slots(plan, seed):
    def proto(ctx):
        for kind, amount in plan:
            if kind == "send":
                for _ in range(amount):
                    yield Send("x")
            elif kind == "listen":
                for _ in range(amount):
                    yield Listen()
            else:
                yield Idle(amount)
        return None

    sim = Simulator(path_graph(2), NO_CD, seed=seed, exec_config=ExecutionConfig(record_trace=True))
    result = sim.run(proto)
    expected = sum(a for k, a in plan if k in ("send", "listen"))
    for v in (0, 1):
        assert result.energy[v].total == expected
        assert len(result.trace.events_for(v)) == expected
    total_slots = sum(a for _, a in plan)
    assert result.duration == total_slots
    # finish slot = last slot of the final action.
    assert all(f <= total_slots - 1 for f in result.finish_slot)


@settings(max_examples=20, deadline=None)
@given(
    idles=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=6),
)
def test_fixed_frame_contract_alignment(idles):
    """Two nodes executing the same slot schedule observe the same time."""

    def proto(ctx):
        for duration in idles:
            yield Idle(duration)
        yield Send("done")
        return ctx.time

    result = Simulator(path_graph(3), NO_CD, seed=0).run(proto)
    assert len(set(result.outputs)) == 1
    assert result.outputs[0] == sum(idles) + 1


# --- labelings --------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=999),
    source=st.integers(min_value=0, max_value=39),
)
def test_bfs_layers_are_good_labelings(n, seed, source):
    graph = random_tree(n, random.Random(seed))
    labels = bfs_distances(graph, source % n)
    assert is_good_labeling(graph, labels)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=12),
    seed=st.integers(min_value=0, max_value=99),
    rounds=st.integers(min_value=1, max_value=4),
)
def test_refinement_always_good_local(n, seed, rounds):
    from repro.core.clustering import refine_labeling
    from repro.core.schemes import SRScheme
    from repro.sim import LOCAL

    graph = random_tree(n, random.Random(seed))
    scheme = SRScheme("LOCAL", max(graph.max_degree, 1))

    def proto(ctx):
        label = 0
        for _ in range(rounds):
            label = yield from refine_labeling(
                ctx, scheme, label, survive_p=0.5, spread_s=1, max_layers=ctx.n
            )
        return label

    labels = Simulator(graph, LOCAL, seed=seed).run(proto).outputs
    assert is_good_labeling(graph, labels)


# --- SR-communication geometry ---------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    delta=st.integers(min_value=1, max_value=512),
    f1=st.floats(min_value=0.001, max_value=0.4),
)
def test_decay_params_monotone_in_failure(delta, f1):
    f2 = f1 / 2
    loose = DecayParams.for_graph(delta, f1)
    tight = DecayParams.for_graph(delta, f2)
    assert tight.phases >= loose.phases
    assert tight.frame_length >= loose.frame_length
    assert loose.slots_per_phase == tight.slots_per_phase
    assert loose.slots_per_phase >= math.log2(max(2, delta))


@settings(max_examples=40, deadline=None)
@given(
    delta=st.integers(min_value=1, max_value=512),
    failure=st.floats(min_value=0.001, max_value=0.4),
)
def test_cd_params_geometry(delta, failure):
    plain = CDParams.for_graph(delta, failure)
    probed = CDParams.for_graph(delta, failure, probe=True)
    acked = CDParams.for_graph(delta, failure, ack=True)
    assert probed.frame_length == plain.frame_length + 2
    assert acked.frame_length == plain.frame_length + plain.epochs
    assert plain.epochs >= 1


# --- deterministic SR correctness -------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=63), min_size=1, max_size=8,
        unique=True,
    ),
)
def test_det_sr_learns_true_minimum(values):
    n = len(values) + 1
    graph = star_graph(n)
    space = 64

    def proto(ctx):
        if ctx.index == 0:
            out = yield from sr_det_cd(ctx, Role.RECEIVER, None, space)
        else:
            out = yield from sr_det_cd(
                ctx, Role.SENDER, values[ctx.index - 1], space
            )
        return out

    result = Simulator(graph, CD, seed=0).run(proto)
    assert result.outputs[0] == min(values)
    assert result.duration <= det_frame_length(space)


# --- path blocking times -----------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    log_n=st.integers(min_value=1, max_value=14),
)
def test_blocking_time_support(seed, log_n):
    from repro.broadcast.path import sample_blocking_time

    n = 2**log_n
    value = sample_blocking_time(random.Random(seed), n)
    assert value in {2**b for b in range(1, log_n + 1)} or value == n
    assert 2 <= value <= n
