"""Unit tests for the slot-synchronous simulator engine."""

from __future__ import annotations

import pytest

from repro.graphs import clique, path_graph, star_graph
from repro.sim import (
    ExecutionConfig,
    BEEP,
    BEEPING,
    CD,
    CD_FD,
    CD_STAR,
    LOCAL,
    NO_CD,
    NOISE,
    SILENCE,
    Idle,
    Listen,
    ProtocolError,
    Send,
    SendListen,
    Simulator,
    SimulationTimeout,
)


def test_single_hop_delivery():
    def proto(ctx):
        if ctx.index == 0:
            yield Send("hello")
            return "sent"
        return (yield Listen())

    result = Simulator(path_graph(2), NO_CD, seed=1).run(proto)
    assert result.outputs == ["sent", "hello"]
    assert result.duration == 1
    assert [e.total for e in result.energy] == [1, 1]


def test_collision_semantics_cd_vs_nocd():
    def proto(ctx):
        if ctx.index in (0, 1):
            yield Send("x")
            return None
        return (yield Listen())

    assert Simulator(clique(3), CD, seed=0).run(proto).outputs[2] is NOISE
    assert Simulator(clique(3), NO_CD, seed=0).run(proto).outputs[2] is SILENCE


def test_silence_when_nobody_sends():
    def proto(ctx):
        if ctx.index == 0:
            return (yield Listen())
        yield Idle(1)
        return None

    for model in (CD, NO_CD):
        assert Simulator(path_graph(2), model, seed=0).run(proto).outputs[0] is SILENCE


def test_cd_star_picks_lowest_index_sender():
    def proto(ctx):
        if ctx.index != 0:
            yield Send(f"m{ctx.index}")
            return None
        return (yield Listen())

    result = Simulator(star_graph(4), CD_STAR, seed=0).run(proto)
    assert result.outputs[0] == "m1"


def test_beeping_model():
    def proto(ctx):
        if ctx.index != 0:
            yield Send("ignored")
            return None
        return (yield Listen())

    assert Simulator(star_graph(3), BEEPING, seed=0).run(proto).outputs[0] is BEEP


def test_local_hears_all_neighbors_sorted():
    def proto(ctx):
        if ctx.index != 0:
            yield Send(ctx.index)
            return None
        return (yield Listen())

    result = Simulator(star_graph(4), LOCAL, seed=0).run(proto)
    assert result.outputs[0] == (1, 2, 3)


def test_idle_is_free_and_skipped_quickly():
    def proto(ctx):
        yield Idle(1_000_000)
        yield Send("late")
        return ctx.time

    result = Simulator(path_graph(2), NO_CD, seed=0).run(proto)
    assert result.duration == 1_000_001
    assert all(e.total == 1 for e in result.energy)
    assert result.outputs == [1_000_001, 1_000_001]


def test_energy_not_charged_for_idle():
    def proto(ctx):
        yield Listen()
        yield Idle(10)
        yield Send("x")
        yield Idle(5)
        return None

    result = Simulator(path_graph(2), NO_CD, seed=0).run(proto)
    for report in result.energy:
        assert report.total == 2
        assert report.sends == 1
        assert report.listens == 1


def test_full_duplex_rejected_in_half_duplex_models():
    def proto(ctx):
        yield SendListen("x")
        return None

    with pytest.raises(ProtocolError):
        Simulator(path_graph(2), NO_CD, seed=0).run(proto)


def test_full_duplex_sender_does_not_hear_itself():
    def proto(ctx):
        if ctx.index == 0:
            return (yield SendListen("a"))
        return (yield SendListen("b"))

    result = Simulator(path_graph(2), CD_FD, seed=0).run(proto)
    assert result.outputs == ["b", "a"]


def test_full_duplex_sole_transmitter_hears_silence():
    def proto(ctx):
        if ctx.index == 0:
            return (yield SendListen("a"))
        return (yield Listen())

    result = Simulator(clique(3), CD_FD, seed=0).run(proto)
    assert result.outputs[0] is SILENCE
    assert result.outputs[1] == "a"


def test_timeout_raises():
    def proto(ctx):
        while True:
            yield Idle(1000)

    with pytest.raises(SimulationTimeout):
        Simulator(
            path_graph(2), NO_CD, seed=0,
            exec_config=ExecutionConfig(time_limit=10_000),
        ).run(proto)


def test_non_action_yield_raises():
    def proto(ctx):
        yield "not an action"

    with pytest.raises(ProtocolError):
        Simulator(path_graph(2), NO_CD, seed=0).run(proto)


def test_per_node_rng_is_deterministic_per_seed():
    def proto(ctx):
        yield Idle(1)
        return ctx.rng.random()

    a = Simulator(path_graph(3), NO_CD, seed=42).run(proto).outputs
    b = Simulator(path_graph(3), NO_CD, seed=42).run(proto).outputs
    c = Simulator(path_graph(3), NO_CD, seed=43).run(proto).outputs
    assert a == b
    assert a != c
    assert len(set(a)) == 3  # private randomness differs across nodes


def test_resumed_sleeper_joins_current_slot():
    # Node 1 sleeps 3 slots then sends; node 0 listens exactly at slot 3.
    def proto(ctx):
        if ctx.index == 1:
            yield Idle(3)
            yield Send("wake")
            return None
        yield Idle(3)
        return (yield Listen())

    result = Simulator(path_graph(2), NO_CD, seed=0).run(proto)
    assert result.outputs[0] == "wake"


def test_trace_records_events():
    def proto(ctx):
        if ctx.index == 0:
            yield Send("m")
            return None
        return (yield Listen())

    sim = Simulator(path_graph(2), NO_CD, seed=0, exec_config=ExecutionConfig(record_trace=True))
    result = sim.run(proto)
    assert result.trace is not None
    kinds = sorted(e.kind for e in result.trace)
    assert kinds == ["listen", "send"]
    assert result.trace.receptions()[0].feedback == "m"


def test_finish_slot_and_duration():
    def proto(ctx):
        if ctx.index == 0:
            yield Send("a")
            yield Send("b")
            return None
        yield Listen()
        return None

    result = Simulator(path_graph(2), NO_CD, seed=0).run(proto)
    assert result.duration == 2
    assert result.finish_slot[0] == 1
    assert result.finish_slot[1] == 0


def test_uids_default_and_custom():
    def proto(ctx):
        yield Idle(1)
        return ctx.uid

    assert Simulator(path_graph(3), NO_CD, seed=0).run(proto).outputs == [1, 2, 3]
    sim = Simulator(path_graph(3), NO_CD, seed=0, uids=[7, 5, 9])
    assert sim.run(proto).outputs == [7, 5, 9]
    with pytest.raises(ValueError):
        Simulator(path_graph(3), NO_CD, uids=[1, 1, 2])


def test_inputs_keys_outside_range_raise():
    def proto(ctx):
        yield Idle(1)
        return None

    sim = Simulator(path_graph(3), NO_CD, seed=0)
    with pytest.raises(ValueError, match=r"inputs keys"):
        sim.run(proto, inputs={3: {"source": True}})
    with pytest.raises(ValueError, match=r"inputs keys"):
        sim.run(proto, inputs={-1: {"source": True}})
    with pytest.raises(ValueError, match=r"inputs keys"):
        sim.run(proto, inputs={"0": {"source": True}})
    # in-range keys still work
    assert sim.run(proto, inputs={2: {"x": 1}}).outputs == [None] * 3


def test_reference_rejects_out_of_range_inputs_too():
    from repro.sim.reference import ReferenceSimulator

    def proto(ctx):
        yield Idle(1)
        return None

    with pytest.raises(ValueError, match=r"inputs keys"):
        ReferenceSimulator(path_graph(2), NO_CD).run(proto, inputs={5: {}})


def test_invalid_resolution_mode_rejected():
    with pytest.raises(ValueError, match="resolution"):
        Simulator(
            path_graph(2), NO_CD,
            exec_config=ExecutionConfig(resolution="quantum"),
        )


def test_all_resolution_modes_accepted():
    from repro.sim import RESOLUTION_MODES

    assert set(RESOLUTION_MODES) == {"bitmask", "list", "numpy"}
    for mode in RESOLUTION_MODES:
        Simulator(
            path_graph(2), NO_CD,
            exec_config=ExecutionConfig(resolution=mode),
        )


def test_list_resolution_matches_bitmask():
    def proto(ctx):
        if ctx.index % 2:
            yield Send(("m", ctx.index))
            return None
        return (yield Listen())

    graph = star_graph(5)
    a = Simulator(
        graph, CD, seed=0, exec_config=ExecutionConfig(resolution="bitmask")
    ).run(proto)
    b = Simulator(
        graph, CD, seed=0, exec_config=ExecutionConfig(resolution="list")
    ).run(proto)
    assert a.outputs == b.outputs
    assert a.duration == b.duration
    assert [e.total for e in a.energy] == [e.total for e in b.energy]


def test_meter_energy_off_reports_zeros():
    def proto(ctx):
        yield Send("x")
        yield Listen()
        return None

    result = Simulator(
        path_graph(2), NO_CD, seed=0,
        exec_config=ExecutionConfig(meter_energy=False),
    ).run(proto)
    assert all(e.total == 0 for e in result.energy)
    assert result.duration == 2  # semantics unaffected


def test_custom_observer_sees_every_active_slot():
    from repro.sim import SlotObserver

    class Recorder(SlotObserver):
        def __init__(self):
            self.slots = []
            self.n = None

        def on_run_start(self, n):
            self.n = n

        def on_slot(self, slot, senders, listeners, duplexers, feedbacks):
            self.slots.append(
                (slot, sorted(senders), sorted(listeners), sorted(duplexers))
            )

    def proto(ctx):
        if ctx.index == 0:
            yield Send("a")
            yield Idle(3)
            yield Send("b")
            return None
        yield Listen()
        yield Idle(3)
        yield Listen()
        return None

    recorder = Recorder()
    Simulator(path_graph(2), NO_CD, seed=0, observers=[recorder]).run(proto)
    assert recorder.n == 2
    assert recorder.slots == [
        (0, [0], [1], []),
        (4, [0], [1], []),
    ]


def test_run_seed_override_matches_fresh_simulator():
    def proto(ctx):
        yield Idle(1)
        return ctx.rng.random()

    sim = Simulator(path_graph(3), NO_CD, seed=0)
    overridden = sim.run(proto, seed=42)
    fresh = Simulator(path_graph(3), NO_CD, seed=42).run(proto)
    assert overridden.outputs == fresh.outputs
    assert overridden.seed == 42
    # and the simulator's own seed is untouched
    assert sim.run(proto).seed == 0


def test_immediate_return_protocol():
    def proto(ctx):
        return "done"
        yield  # pragma: no cover

    result = Simulator(path_graph(2), NO_CD, seed=0).run(proto)
    assert result.outputs == ["done", "done"]
    assert result.duration == 0
