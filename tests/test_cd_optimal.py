"""Tests for the Theorem 20 CD-optimal broadcast (Section 7)."""

from __future__ import annotations

import pytest

from repro.broadcast import run_broadcast
from repro.broadcast.cd_optimal import CDOptimalParams, cd_optimal_broadcast_protocol
from repro.core.labeling import is_good_labeling
from repro.core.tree_clusters import TreeParams, learn_ind, sample_colors
from repro.graphs import cycle_graph, grid_graph, path_graph, random_gnp, star_graph
from repro.sim import CD, Simulator

from tests.conftest import knowledge_for


def _params(g, iterations=3, rounds=2):
    return CDOptimalParams.for_graph(
        g.n, g.max_degree, xi=0.5, iterations=iterations, rounds_s=rounds
    )


class TestTreeParams:
    def test_color_count_scales(self):
        small = TreeParams.for_graph(16, 2, xi=0.5)
        large = TreeParams.for_graph(16, 8, xi=0.5)
        assert large.num_colors > small.num_colors

    def test_xi_validation(self):
        with pytest.raises(ValueError):
            TreeParams.for_graph(16, 4, xi=0.0)

    def test_sample_colors_shape(self):
        import random

        params = TreeParams.for_graph(16, 4, xi=0.5)
        colors = sample_colors(random.Random(0), params)
        assert len(colors) == params.num_colorings
        assert all(0 <= c < params.num_colors for c in colors)


class TestLearnInd:
    def test_child_learns_index_on_star(self):
        # Star center is parent of every leaf; leaves learn an Ind w.h.p.
        g = star_graph(5)
        params = TreeParams.for_graph(g.n, g.max_degree, xi=1.0)
        import random

        master = random.Random(99)
        colors = {v: sample_colors(master, params) for v in range(g.n)}

        def proto(ctx):
            parent = colors[0] if ctx.index != 0 else None
            ind = yield from learn_ind(ctx, params, colors[ctx.index], parent)
            return ind

        result = Simulator(g, CD, seed=1).run(proto)
        assert result.outputs[0] is None  # root has no parent
        for v in range(1, g.n):
            ind = result.outputs[v]
            if ind is None:
                continue  # low-probability unusable tuple
            # Verify the Ind property: no other neighbor of v (only the
            # center here) shares the color... trivially true on a star.
            assert 0 <= ind < params.num_colorings


class TestCDOptimalBroadcast:
    @pytest.mark.parametrize("maker", [
        lambda: cycle_graph(8),
        lambda: grid_graph(3, 3),
        lambda: path_graph(7),
    ])
    def test_delivers(self, maker):
        g = maker()
        out = run_broadcast(
            g, CD, cd_optimal_broadcast_protocol(_params(g)),
            knowledge=knowledge_for(g), seed=2,
        )
        assert out.delivered

    def test_statistical_delivery(self):
        g = random_gnp(10, 0.3)
        k = knowledge_for(g)
        good = sum(
            run_broadcast(
                g, CD, cd_optimal_broadcast_protocol(_params(g)),
                knowledge=k, seed=s,
            ).delivered
            for s in range(5)
        )
        assert good >= 4

    def test_final_labels_good(self):
        g = cycle_graph(8)
        proto = cd_optimal_broadcast_protocol(_params(g), return_labels=True)
        result = Simulator(g, CD, seed=3).run(
            proto, inputs={0: {"source": True, "payload": "m"}}
        )
        labels = [out[2] for out in result.outputs]
        assert is_good_labeling(g, labels)

    def test_energy_well_below_time(self):
        # The whole point of Theorem 20: massive sleeping.  Energy must be
        # orders of magnitude below the slot count.
        g = grid_graph(3, 3)
        out = run_broadcast(
            g, CD, cd_optimal_broadcast_protocol(_params(g)),
            knowledge=knowledge_for(g), seed=1,
        )
        assert out.delivered
        assert out.max_energy * 50 < out.duration

    def test_param_defaults(self):
        p = CDOptimalParams.for_graph(64, 8)
        assert 0 < p.survive_p <= 0.5
        assert p.rounds_s >= 2
        assert p.iterations >= 2
        assert 0 < p.request_failure < 1
