"""Differential testing: the event-heap engine vs. the naive oracle.

Random generator protocols (randomized actions, per-node divergence,
feedback-dependent behaviour) must produce byte-identical results under
:class:`Simulator` and :class:`ReferenceSimulator`: same outputs, same
energy meters, same finish slots, same duration.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import clique, grid_graph, path_graph, random_gnp, star_graph
from repro.sim import (
    ExecutionConfig,
    BEEPING,
    CD,
    CD_FD,
    CD_STAR,
    LOCAL,
    NO_CD,
    Idle,
    Listen,
    Send,
    Simulator,
)
from repro.sim.actions import SendListen
from repro.sim.legacy import LegacySimulator
from repro.sim.models import LossyModel
from repro.sim.reference import ReferenceSimulator
from repro.sim.resolution import numpy_available

# The numpy backend joins the sweep when numpy is installed; without it
# the suite still passes (resolution="numpy" would just alias bitmask).
RESOLUTIONS = ("bitmask", "list") + (("numpy",) if numpy_available() else ())

FIVE_MODELS = {
    "LOCAL": LOCAL,
    "CD": CD,
    "No-CD": NO_CD,
    "CD*": CD_STAR,
    "BEEP": BEEPING,
}


def _random_protocol(steps: int, duplex: bool):
    """A protocol whose actions depend on private randomness and on the
    feedback it hears (exercising feedback-driven divergence)."""

    def protocol(ctx):
        heard = 0
        for step in range(steps):
            roll = ctx.rng.random()
            if roll < 0.3:
                yield Send(("m", ctx.index, step, heard))
            elif roll < 0.65:
                feedback = yield Listen()
                if feedback not in (None, ()) and not isinstance(feedback, str):
                    heard += 1
            elif duplex and roll < 0.75:
                feedback = yield SendListen(("d", ctx.index, step))
                if feedback:
                    heard += 1
            else:
                yield Idle(1 + ctx.rng.randrange(4))
        return (ctx.index, heard)

    return protocol


def _assert_same(fast, slow):
    assert fast.outputs == slow.outputs
    assert [e.total for e in fast.energy] == [e.total for e in slow.energy]
    assert [e.sends for e in fast.energy] == [e.sends for e in slow.energy]
    assert [e.listens for e in fast.energy] == [e.listens for e in slow.energy]
    assert fast.finish_slot == slow.finish_slot
    assert fast.duration == slow.duration


def _compare(
    graph, model, protocol, seed, inputs=None, model_factory=None,
    include_legacy=True,
):
    """Engine (both resolution paths) and the frozen legacy engine must
    all match the reference oracle.

    ``model_factory`` builds a fresh model per run for stateful channels
    (LossyModel carries rng state across runs, so each simulator needs
    its own instance).  ``include_legacy=False`` skips the frozen engine:
    it resolves listeners before duplexers rather than in vertex order,
    which only matters (and was never exercised) for stateful models
    under full duplex.
    """
    make = model_factory or (lambda: model)
    slow = ReferenceSimulator(graph, make(), seed=seed).run(protocol, inputs=inputs)
    for resolution in RESOLUTIONS:
        fast = Simulator(
            graph, make(), seed=seed,
            exec_config=ExecutionConfig(resolution=resolution),
        ).run(protocol, inputs=inputs)
        _assert_same(fast, slow)
    if include_legacy:
        legacy = LegacySimulator(graph, make(), seed=seed).run(
            protocol, inputs=inputs
        )
        _assert_same(legacy, slow)


class TestEquivalence:
    @pytest.mark.parametrize("model", [NO_CD, CD, LOCAL])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_protocols_on_grid(self, model, seed):
        graph = grid_graph(3, 3)
        _compare(graph, model, _random_protocol(12, duplex=False), seed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_duplex_on_clique(self, seed):
        graph = clique(5)
        _compare(graph, CD_FD, _random_protocol(10, duplex=True), seed)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        n=st.integers(min_value=2, max_value=10),
        steps=st.integers(min_value=1, max_value=15),
    )
    def test_hypothesis_random_graphs(self, seed, n, steps):
        graph = random_gnp(n, 0.4, random.Random(seed))
        _compare(graph, NO_CD, _random_protocol(steps, duplex=False), seed)

    def test_real_algorithm_decay(self):
        from repro.broadcast import decay_broadcast_protocol, source_inputs
        from repro.sim import Knowledge

        graph = path_graph(6)
        protocol = decay_broadcast_protocol(failure=0.05)
        inputs = source_inputs(0, "m")
        for seed in (0, 1):
            fast = Simulator(
                graph, NO_CD, seed=seed,
                knowledge=Knowledge(n=6, max_degree=2, diameter=5),
            ).run(protocol, inputs=inputs)
            slow = ReferenceSimulator(
                graph, NO_CD, seed=seed,
                knowledge=Knowledge(n=6, max_degree=2, diameter=5),
            ).run(protocol, inputs=inputs)
            assert fast.outputs == slow.outputs
            assert fast.duration == slow.duration
            assert [e.total for e in fast.energy] == [
                e.total for e in slow.energy
            ]

    def test_real_algorithm_path(self):
        from repro.broadcast import source_inputs
        from repro.broadcast.path import path_broadcast_protocol
        from repro.sim import Knowledge

        graph = path_graph(8)
        protocol = path_broadcast_protocol(oriented=True)
        inputs = source_inputs(0, "m")
        knowledge = Knowledge(n=8, max_degree=2, diameter=7)
        fast = Simulator(graph, LOCAL, seed=3, knowledge=knowledge).run(
            protocol, inputs=inputs
        )
        slow = ReferenceSimulator(graph, LOCAL, seed=3, knowledge=knowledge).run(
            protocol, inputs=inputs
        )
        assert fast.outputs == slow.outputs
        assert fast.duration == slow.duration

    def test_star_contention(self):
        _compare(star_graph(6), CD, _random_protocol(14, duplex=False), 7)


class TestAllModelsBothPaths:
    """The satellite sweep: five channel models x LossyModel wrapper x
    random protocols x both engine resolution paths (plus the frozen
    legacy engine), all differentially pinned to the reference oracle."""

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    @pytest.mark.parametrize("lossy", [False, True], ids=["clean", "lossy"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_model_matrix(self, model_name, lossy, seed):
        base = FIVE_MODELS[model_name]
        graph = random_gnp(9, 0.5, random.Random(40 + seed))
        if lossy:
            factory = lambda: LossyModel(base, 0.35, seed=91)
        else:
            factory = lambda: base
        _compare(
            graph,
            base,
            _random_protocol(14, duplex=False),
            seed,
            model_factory=factory,
        )

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    def test_model_matrix_dense_contention(self, model_name):
        """Clique stress: every reception sees high contention, driving
        the >=2-transmitters branches (NOISE, LOCAL's full-list path)."""
        base = FIVE_MODELS[model_name]
        _compare(clique(7), base, _random_protocol(12, duplex=False), 3)

    @pytest.mark.parametrize("lossy", [False, True], ids=["clean", "lossy"])
    def test_full_duplex_lossy_receiver_order(self, lossy):
        """Duplexers and listeners interleave by vertex index; with a
        stateful (lossy) channel the resolution *order* itself is part of
        the semantics, so engine and oracle must consume channel
        randomness identically.  (The frozen legacy engine predates this
        guarantee and is deliberately excluded.)"""
        base = LOCAL  # full duplex
        if lossy:
            factory = lambda: LossyModel(base, 0.3, seed=17)
        else:
            factory = lambda: base
        for seed in (0, 1, 2):
            _compare(
                clique(6),
                base,
                _random_protocol(12, duplex=True),
                seed,
                model_factory=factory,
                include_legacy=False,
            )

    def test_lossy_nocd_on_grid(self):
        factory = lambda: LossyModel(NO_CD, 0.5, seed=5)
        _compare(
            grid_graph(3, 4),
            NO_CD,
            _random_protocol(16, duplex=False),
            11,
            model_factory=factory,
        )
