"""Tests for the pluggable resolution backends (repro.sim.resolution).

Backend-level differential coverage: every backend must produce
identical feedback for identical slot inputs, across the paper models,
the lossy wrapper, and the mask-table edge geometries (n > 64 multi-word
masks, n not a multiple of 64, empty transmit slots, NEEDS_MESSAGES
slots mixing vectorized and per-listener resolution).
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.graphs import clique, path_graph, random_gnp, star_graph
from repro.graphs.graph import Graph
from repro.sim import (
    ExecutionConfig,
    BEEPING,
    CD,
    CD_STAR,
    LOCAL,
    NO_CD,
    Simulator,
)
from repro.sim.feedback import NOISE, SILENCE
from repro.sim.models import NEEDS_MESSAGES, LossyModel
from repro.sim import resolution as resolution_module
from repro.sim.resolution import (
    RESOLUTION_MODES,
    BitmaskBackend,
    ListBackend,
    NumpyBackend,
    create_backend,
    numpy_available,
)

FIVE_MODELS = {
    "LOCAL": LOCAL,
    "CD": CD,
    "No-CD": NO_CD,
    "CD*": CD_STAR,
    "BEEP": BEEPING,
}

# The acceptance sizes: single word, exactly one word, word boundary + 1,
# multi-word ragged, many words.
SIZES = (7, 64, 65, 200, 512)


def _random_slot(graph: Graph, rng: random.Random, send_p: float = 0.25):
    """A synthetic slot: every vertex transmits w.p. send_p, the rest
    listen (receivers in ascending order, valid for stateful models)."""
    transmitting = {}
    receivers = []
    for v in range(graph.n):
        if rng.random() < send_p:
            transmitting[v] = ("m", v)
        else:
            receivers.append(v)
    return transmitting, receivers


def _graph_for(n: int) -> Graph:
    if n <= 64:
        return random_gnp(n, 0.5, random.Random(n))
    return random_gnp(n, 0.1, random.Random(n))


def _resolve(backend, model, transmitting, receivers):
    feedbacks = {}
    backend.slot_resolver(model)(transmitting, list(receivers), feedbacks)
    return feedbacks


class TestBackendRegistry:
    def test_modes(self):
        assert RESOLUTION_MODES == ("bitmask", "list", "numpy")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="resolution"):
            create_backend("quantum", path_graph(2))

    def test_create_returns_expected_classes(self):
        graph = path_graph(3)
        assert isinstance(create_backend("list", graph), ListBackend)
        assert isinstance(create_backend("bitmask", graph), BitmaskBackend)
        if numpy_available():
            assert isinstance(create_backend("numpy", graph), NumpyBackend)

    def test_numpy_fallback_without_numpy(self, monkeypatch):
        monkeypatch.setattr(resolution_module, "_np", None)
        monkeypatch.setattr(resolution_module, "_warned_numpy_fallback", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = create_backend("numpy", path_graph(4))
        assert isinstance(backend, BitmaskBackend)
        assert any("falls back" in str(w.message) for w in caught)
        # Only the first request warns.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            create_backend("numpy", path_graph(4))
        assert not caught

    def test_simulator_numpy_fallback_still_runs(self, monkeypatch):
        from repro.sim import Idle

        monkeypatch.setattr(resolution_module, "_np", None)
        monkeypatch.setattr(resolution_module, "_warned_numpy_fallback", True)

        def proto(ctx):
            yield Idle(1)
            return ctx.index

        sim = Simulator(
            path_graph(3), NO_CD,
            exec_config=ExecutionConfig(resolution="numpy"),
        )
        assert sim.backend.name == "bitmask"
        assert sim.run(proto).outputs == [0, 1, 2]


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestNeighborMaskArray:
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_int_masks(self, n):
        import numpy

        graph = _graph_for(n)
        table = graph.neighbor_mask_array()
        words = (n + 63) >> 6
        assert table.shape == (n, words)
        assert table.dtype == numpy.uint64
        for v in range(n):
            packed = 0
            for w in range(words):
                packed |= int(table[v, w]) << (64 * w)
            assert packed == graph.neighbor_mask(v)

    def test_cached(self):
        graph = path_graph(70)
        assert graph.neighbor_mask_array() is graph.neighbor_mask_array()


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestBackendEquivalence:
    """numpy == bitmask == list, feedback for feedback."""

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    def test_paper_models_random_slots(self, n, model_name):
        model = FIVE_MODELS[model_name]
        graph = _graph_for(n)
        backends = [create_backend(name, graph) for name in RESOLUTION_MODES]
        rng = random.Random(1000 + n)
        for _ in range(4):
            transmitting, receivers = _random_slot(graph, rng)
            expected = _resolve(backends[0], model, transmitting, receivers)
            for backend in backends[1:]:
                assert _resolve(
                    backend, model, transmitting, receivers
                ) == expected, backend.name

    @pytest.mark.parametrize("n", (7, 65, 200))
    def test_lossy_model_random_slots(self, n):
        """Stateful channel: backends must consume rng identically, so
        compare fresh same-seeded models per backend."""
        graph = _graph_for(n)
        rng = random.Random(2000 + n)
        transmitting, receivers = _random_slot(graph, rng, send_p=0.4)
        outcomes = []
        for name in RESOLUTION_MODES:
            model = LossyModel(NO_CD, 0.5, seed=77)
            backend = create_backend(name, graph)
            outcomes.append(_resolve(backend, model, transmitting, receivers))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    @pytest.mark.parametrize("n", SIZES)
    def test_empty_transmit_slot(self, n):
        graph = _graph_for(n)
        receivers = list(range(0, n, 2))
        for model in (NO_CD, CD, LOCAL, BEEPING, CD_STAR):
            numpy_backend = create_backend("numpy", graph)
            feedbacks = _resolve(numpy_backend, model, {}, receivers)
            silence = model.resolve_count(0, None)
            assert feedbacks == {v: silence for v in receivers}

    def test_no_receivers(self):
        graph = clique(70)
        backend = create_backend("numpy", graph)
        feedbacks = _resolve(backend, NO_CD, {0: "m", 1: "m"}, [])
        assert feedbacks == {}

    def test_needs_messages_mixed_slot(self):
        """LOCAL: one listener with a single transmitting neighbor
        (vectorized k==1 path) and one with several (per-listener
        NEEDS_MESSAGES fallback) in the same slot."""
        # Star: center 0 sees all leaves; leaves see only the center.
        graph = star_graph(7)  # vertices 0..6, 0 is the hub
        transmitting = {1: "a", 2: "b", 3: "c"}
        receivers = [0, 4, 5, 6]
        for name in RESOLUTION_MODES:
            backend = create_backend(name, graph)
            feedbacks = _resolve(backend, LOCAL, transmitting, receivers)
            assert feedbacks[0] == ("a", "b", "c"), name  # fallback path
            assert feedbacks[4] == feedbacks[5] == feedbacks[6] == (), name

    def test_needs_messages_mixed_with_k1(self):
        # Path 0-1-2-3-4: transmitters 1 and 3.  Vertex 2 hears both
        # (NEEDS_MESSAGES under LOCAL); vertices 0 and 4 hear one each
        # (vectorized k==1); all under one slot.
        graph = path_graph(5)
        transmitting = {1: "x", 3: "y"}
        receivers = [0, 2, 4]
        expected = {0: ("x",), 2: ("x", "y"), 4: ("y",)}
        for name in RESOLUTION_MODES:
            backend = create_backend(name, graph)
            assert _resolve(backend, LOCAL, transmitting, receivers) == expected

    def test_cd_buckets_on_clique(self):
        graph = clique(100)
        backend = create_backend("numpy", graph)
        # 0 transmitters -> SILENCE; 1 -> message; >= 2 -> NOISE.
        assert _resolve(backend, CD, {}, [5]) == {5: SILENCE}
        assert _resolve(backend, CD, {7: "m"}, [5]) == {5: "m"}
        assert _resolve(backend, CD, {7: "m", 8: "n"}, [5]) == {5: NOISE}

    @pytest.mark.parametrize("need", ["none", "one", "any"])
    def test_generic_count_model_respects_needs_first_message(self, need):
        """A count model narrowing needs_first_message without overriding
        resolve_count_array must still resolve correctly: the base loop
        may only read `firsts` at the positions the backend computed."""
        from repro.sim.models import ChannelModel

        class CountOnly(ChannelModel):
            supports_count = True

            def resolve(self, transmissions):
                if len(transmissions) == 1 and self.needs_first_message != "none":
                    return transmissions[0]
                return len(transmissions)

            def resolve_count(self, k, first_message):
                if k == 1 and self.needs_first_message != "none":
                    return first_message
                return k

        CountOnly.needs_first_message = need
        model = CountOnly(f"count-{need}")
        graph = _graph_for(65)
        rng = random.Random(31)
        for _ in range(3):
            transmitting, receivers = _random_slot(graph, rng)
            expected = _resolve(
                create_backend("list", graph), model, transmitting, receivers
            )
            got = _resolve(
                create_backend("numpy", graph), model, transmitting, receivers
            )
            assert got == expected

    def test_generic_count_model_uses_base_array_path(self):
        """A custom count-based model without a vectorized override runs
        through the base resolve_count_array loop (incl. NEEDS)."""
        from repro.sim.models import ChannelModel

        class Parity(ChannelModel):
            supports_count = True

            def resolve(self, transmissions):
                if len(transmissions) == 3:
                    return tuple(transmissions)
                return len(transmissions) % 2

            def resolve_count(self, k, first_message):
                if k == 3:
                    return NEEDS_MESSAGES
                return k % 2

        model = Parity("parity")
        graph = clique(80)
        expected = _resolve(create_backend("list", graph), model,
                            {0: "a", 1: "b", 2: "c"}, [10, 11])
        got = _resolve(create_backend("numpy", graph), model,
                       {0: "a", 1: "b", 2: "c"}, [10, 11])
        assert got == expected == {10: ("a", "b", "c"), 11: ("a", "b", "c")}


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestPopcountFallback:
    def test_table_popcount_matches_native(self):
        import numpy

        from repro.sim.resolution import (
            _popcount_rows_native,
            _popcount_rows_table,
        )

        rng = numpy.random.default_rng(3)
        masked = rng.integers(
            0, 2**64, size=(37, 5), dtype=numpy.uint64
        )
        table = _popcount_rows_table(masked)
        if hasattr(numpy, "bitwise_count"):
            assert list(table) == list(_popcount_rows_native(masked))
        expected = [
            sum(bin(int(masked[i, w])).count("1") for w in range(5))
            for i in range(37)
        ]
        assert [int(x) for x in table] == expected

    def test_backend_works_with_table_popcount(self, monkeypatch):
        """Force the numpy<2.0 popcount path through a whole backend."""
        import repro.sim.resolution as mod

        monkeypatch.setattr(mod, "_popcount_rows", mod._popcount_rows_table)
        graph = _graph_for(65)
        transmitting, receivers = _random_slot(graph, random.Random(9))
        expected = _resolve(
            create_backend("bitmask", graph), NO_CD, transmitting, receivers
        )
        got = _resolve(
            create_backend("numpy", graph), NO_CD, transmitting, receivers
        )
        assert got == expected


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestEngineLevelNumpy:
    """Whole-run differential: the numpy-backed engine vs bitmask, the
    legacy engine, and the reference oracle at word-boundary and large
    sizes (acceptance sizes beyond what the main differential suite
    sweeps)."""

    @pytest.mark.parametrize("n", (65, 200))
    def test_random_protocol_large_n(self, n):
        from repro.sim import Idle, Listen, Send
        from repro.sim.legacy import LegacySimulator
        from repro.sim.reference import ReferenceSimulator

        def proto(ctx):
            heard = 0
            for step in range(6):
                roll = ctx.rng.random()
                if roll < 0.3:
                    yield Send(("m", ctx.index, step))
                elif roll < 0.7:
                    feedback = yield Listen()
                    if feedback not in (None, ()) and not isinstance(
                        feedback, str
                    ):
                        heard += 1
                else:
                    yield Idle(1 + ctx.rng.randrange(3))
            return (ctx.index, heard)

        graph = _graph_for(n)
        slow = ReferenceSimulator(graph, NO_CD, seed=4).run(proto)
        legacy = LegacySimulator(graph, NO_CD, seed=4).run(proto)
        for mode in RESOLUTION_MODES:
            fast = Simulator(
                graph, NO_CD, seed=4,
                exec_config=ExecutionConfig(resolution=mode),
            ).run(proto)
            assert fast.outputs == slow.outputs == legacy.outputs
            assert fast.duration == slow.duration
            assert [e.total for e in fast.energy] == [
                e.total for e in slow.energy
            ]

    def test_dense_clique_n512(self):
        from repro.sim import Listen, Send
        from repro.sim.reference import ReferenceSimulator

        def proto(ctx):
            heard = 0
            for step in range(4):
                if ctx.rng.random() < 0.1:
                    yield Send(("m", ctx.index, step))
                else:
                    feedback = yield Listen()
                    if feedback is not None:
                        heard += 1
            return heard

        graph = clique(512)
        bitmask = Simulator(graph, NO_CD, seed=0).run(proto)
        numpy_run = Simulator(
            graph, NO_CD, seed=0,
            exec_config=ExecutionConfig(resolution="numpy"),
        ).run(proto)
        oracle = ReferenceSimulator(graph, NO_CD, seed=0).run(proto)
        assert numpy_run.outputs == bitmask.outputs == oracle.outputs
        assert numpy_run.duration == bitmask.duration == oracle.duration
        assert [e.total for e in numpy_run.energy] == [
            e.total for e in oracle.energy
        ]
