"""Phase plans (repro.sim.plan): vocabulary, determinism, differential.

Covers the slots-at-a-time stepping ABI:

* unit semantics of every plan primitive (resume values, padding,
  early exit, validation errors);
* the bulk-randomness contract: ``NodeCtx.rand_bernoulli_block`` and
  ``SendProb`` consume exactly the stream a per-slot loop would (draw
  order pinned);
* the differential matrix: a protocol exercising every primitive (plus
  per-slot escape hatches) must be byte-identical across
  ``stepping="phase"`` / ``stepping="slot"`` / the reference oracle,
  for all 5 paper models x lossy x every resolution backend x
  serial / lock-step execution;
* the rewired paper protocols (decay SR frames, LOCAL flooding) pinned
  phase-vs-slot;
* generator-entry accounting (``SimResult.gen_entries``), the stepping
  metric ``repro bench`` reports.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import clique, path_graph, random_gnp, star_graph
from repro.sim import (
    ExecutionConfig,
    BEEPING,
    CD,
    CD_FD,
    CD_STAR,
    LOCAL,
    NO_CD,
    Idle,
    Knowledge,
    Listen,
    ListenUntil,
    ProtocolError,
    Repeat,
    Send,
    SendListen,
    SendProb,
    SILENCE,
    Simulator,
    Steps,
    numpy_available,
    run_trials,
)
from repro.sim.models import LossyModel
from repro.sim.node import NodeCtx
from repro.sim.plan import expand_plans, start_plan
from repro.sim.reference import ReferenceSimulator

FIVE_MODELS = {
    "LOCAL": LOCAL,
    "CD": CD,
    "No-CD": NO_CD,
    "CD*": CD_STAR,
    "BEEP": BEEPING,
}

RESOLUTIONS = ("bitmask", "list") + (("numpy",) if numpy_available() else ())


def _assert_same(fast, slow):
    assert fast.outputs == slow.outputs
    assert [e.total for e in fast.energy] == [e.total for e in slow.energy]
    assert [e.sends for e in fast.energy] == [e.sends for e in slow.energy]
    assert [e.listens for e in fast.energy] == [e.listens for e in slow.energy]
    assert fast.finish_slot == slow.finish_slot
    assert fast.duration == slow.duration


# ---------------------------------------------------------------------------
# Unit semantics
# ---------------------------------------------------------------------------


class TestPlanSemantics:
    def _run(self, proto, n=2, model=NO_CD, seed=1, stepping="phase"):
        return Simulator(
            path_graph(n), model, seed=seed,
            exec_config=ExecutionConfig(stepping=stepping),
        ).run(proto)

    def test_repeat_send_resumes_none(self):
        seen = {}

        def proto(ctx):
            if ctx.index == 0:
                seen["resume"] = yield Repeat(Send("m"), 3)
                return "done"
            fbs = yield Repeat(Listen(), 3)
            return fbs

        result = self._run(proto)
        assert seen["resume"] is None
        assert result.outputs[1] == ("m", "m", "m")
        assert result.energy[0].sends == 3
        assert result.energy[1].listens == 3

    def test_listen_until_early_exit_and_pad(self):
        def proto(ctx):
            if ctx.index == 0:
                yield Idle(2)
                yield Send("hello")
                return None
            fb = yield ListenUntil(10, pad=True)
            return (fb, ctx.time)

        result = self._run(proto)
        fb, resume_time = result.outputs[1]
        assert fb == "hello"
        # Heard at slot 2, padded through slot 9, resumed at slot 10.
        assert resume_time == 10
        assert result.energy[1].listens == 3
        assert result.duration == 10

    def test_listen_until_no_pad_resumes_immediately(self):
        def proto(ctx):
            if ctx.index == 0:
                yield Idle(2)
                yield Send("hello")
                return None
            fb = yield ListenUntil(10)
            return (fb, ctx.time)

        result = self._run(proto)
        assert result.outputs[1] == ("hello", 3)
        assert result.energy[1].listens == 3

    def test_listen_until_accept_filter(self):
        def proto(ctx):
            if ctx.index == 0:
                yield Send(("skip",))
                yield Send(("take",))
                return None
            fb = yield ListenUntil(4, accept=lambda m: m[0] == "take")
            return fb

        result = self._run(proto)
        assert result.outputs[1] == ("take",)
        assert result.energy[1].listens == 2

    def test_listen_until_exhausted_returns_none(self):
        def proto(ctx):
            if ctx.index == 0:
                yield Idle(5)
                return None
            return (yield ListenUntil(5))

        result = self._run(proto)
        assert result.outputs[1] is None
        assert result.energy[1].listens == 5

    def test_send_prob_draw_order_matches_per_slot_loop(self):
        # The engine draws SendProb decisions exactly like a per-slot
        # `rng.random() < p` loop: pin against a manual replay.
        def proto(ctx):
            yield SendProb("m", 0.5, 12)
            return ctx.rng.random()  # stream position after the plan

        result = self._run(proto, n=1)
        rng = random.Random(random.Random(1).getrandbits(64))
        expected_sends = sum(rng.random() < 0.5 for _ in range(12))
        assert result.energy[0].sends == expected_sends
        assert result.outputs[0] == rng.random()

    def test_steps_collects_listening_feedbacks(self):
        def proto(ctx):
            if ctx.index == 0:
                yield Steps((Send("a"), Idle(1), Send("b")))
                return None
            fbs = yield Steps((Listen(), Idle(1), Listen()))
            return fbs

        result = self._run(proto)
        assert result.outputs[1] == ("a", "b")
        assert result.energy[1].listens == 2

    def test_repeat_sendlisten_full_duplex(self):
        def proto(ctx):
            fbs = yield Repeat(SendListen(("d", ctx.index)), 2)
            return fbs

        result = Simulator(path_graph(2), CD_FD, seed=0).run(proto)
        assert result.outputs[0] == (("d", 1), ("d", 1))
        assert result.outputs[1] == (("d", 0), ("d", 0))

    def test_repeat_sendlisten_illegal_half_duplex(self):
        def proto(ctx):
            yield Repeat(SendListen("d"), 2)

        with pytest.raises(ProtocolError, match="SendListen is illegal"):
            self._run(proto)

    def test_repeat_idle_normalizes(self):
        def proto(ctx):
            if ctx.index == 0:
                yield Repeat(Idle(3), 2)
                yield Send("late")
                return None
            return (yield ListenUntil(8))

        result = self._run(proto)
        assert result.outputs[1] == "late"
        assert result.energy[0].sends == 1
        assert result.energy[0].total == 1  # idling is free

    def test_validation_errors(self):
        for bad in (
            Repeat(Send("m"), 0),
            Repeat("junk", 2),
            ListenUntil(0),
            SendProb("m", 0.5, 0),
            Steps(()),
            Steps((Send("m"), "junk")),
            Steps((Repeat(Send("m"), 2),)),  # no nested plans
        ):
            def proto(ctx, bad=bad):
                yield bad

            with pytest.raises(ProtocolError):
                self._run(proto)

    def test_non_action_still_rejected(self):
        def proto(ctx):
            yield 42

        with pytest.raises(ProtocolError, match="non-action"):
            self._run(proto)

    def test_steps_mid_plan_sendlisten_illegal_half_duplex(self):
        # Regression: the duplex check must fire even when the
        # SendListen is not the first Steps action (the inline fast
        # path, not the classifier, dispatches it).
        def proto(ctx):
            yield Steps((Send("m"), SendListen("d")))

        with pytest.raises(ProtocolError, match="SendListen is illegal"):
            self._run(proto)
        with pytest.raises(ProtocolError, match="SendListen is illegal"):
            self._run(proto, stepping="slot")
        # Same contract under the lock-step driver.
        with pytest.raises(ProtocolError, match="SendListen is illegal"):
            run_trials(
                path_graph(2), NO_CD, proto, (0,),
                exec_config=ExecutionConfig(lockstep=True),
            )

    def test_steps_normalizes_action_subclasses(self):
        # Regression: subclasses of the primitive actions are accepted
        # (isinstance validation) and must behave identically under the
        # phase engines' exact-class fast paths.
        class MyListen(Listen):
            pass

        class MySend(Send):
            pass

        def proto(ctx):
            if ctx.index == 0:
                yield Steps((Idle(1), MySend("a")))
                return None
            fbs = yield Steps((Listen(), MyListen()))
            return fbs

        runs = {
            stepping: self._run(proto, stepping=stepping)
            for stepping in ("phase", "slot")
        }
        assert runs["phase"].outputs[1] == (SILENCE, "a")
        _assert_same(runs["phase"], runs["slot"])


class TestBernoulliBlock:
    def test_draw_order_pinned(self):
        ctx = NodeCtx(
            index=0, uid=1, knowledge=Knowledge(n=1, max_degree=1),
            rng=random.Random(1234),
        )
        block = ctx.rand_bernoulli_block(0.3, 50)
        mirror = random.Random(1234)
        expected = [mirror.random() < 0.3 for _ in range(50)]
        assert block == expected
        # The stream continues where a per-slot loop would have left it.
        assert ctx.rng.random() == mirror.random()

    def test_exact_sequence_is_stable(self):
        # Regression pin: the audited draw order must never change (it
        # is what keeps pre-drawing protocols byte-identical to their
        # per-slot forms).
        ctx = NodeCtx(
            index=0, uid=1, knowledge=Knowledge(n=1, max_degree=1),
            rng=random.Random(7),
        )
        block = ctx.rand_bernoulli_block(0.5, 12)
        assert block == [
            True, True, False, True, False, True, True, False, True,
            True, True, True,
        ]

    def test_rejects_negative(self):
        ctx = NodeCtx(
            index=0, uid=1, knowledge=Knowledge(n=1, max_degree=1),
            rng=random.Random(0),
        )
        with pytest.raises(ValueError):
            ctx.rand_bernoulli_block(0.5, -1)

    def test_sendprob_uses_same_stream(self):
        # start_plan(SendProb) and rand_bernoulli_block agree draw for
        # draw, so protocols may pre-draw and hand decisions to either.
        rng_a, rng_b = random.Random(99), random.Random(99)
        ps, first = start_plan(SendProb("m", 0.25, 30), rng_a)
        ctx = NodeCtx(
            index=0, uid=1, knowledge=Knowledge(n=1, max_degree=1),
            rng=rng_b,
        )
        ctx.rand_bernoulli_block(0.25, 30)
        assert rng_a.random() == rng_b.random()


# ---------------------------------------------------------------------------
# Differential matrix
# ---------------------------------------------------------------------------


def _plan_protocol(steps: int, duplex: bool):
    """Exercises every plan primitive plus per-slot escape hatches, with
    feedback- and randomness-driven divergence between nodes."""

    def protocol(ctx):
        heard = 0
        for step in range(steps):
            roll = ctx.rng.random()
            if roll < 0.12:
                yield Send(("m", ctx.index, step, heard))
            elif roll < 0.24:
                yield Repeat(Send(("r", ctx.index, step)), 1 + ctx.rng.randrange(3))
            elif roll < 0.36:
                fbs = yield Repeat(Listen(), 1 + ctx.rng.randrange(4))
                heard += sum(
                    1 for f in fbs
                    if f not in (None, ()) and not isinstance(f, str)
                )
            elif roll < 0.48:
                fb = yield ListenUntil(
                    1 + ctx.rng.randrange(5),
                    pad=bool(ctx.rng.randrange(2)),
                )
                if fb is not None:
                    heard += 1
            elif roll < 0.58:
                yield SendProb(("p", ctx.index), 0.4, 1 + ctx.rng.randrange(5))
            elif roll < 0.70:
                acts = []
                for _ in range(1 + ctx.rng.randrange(4)):
                    sub = ctx.rng.random()
                    if sub < 0.3:
                        acts.append(Send(("s", ctx.index)))
                    elif sub < 0.6:
                        acts.append(Listen())
                    elif sub < 0.8:
                        acts.append(Idle(1 + ctx.rng.randrange(3)))
                    elif duplex:
                        acts.append(SendListen(("d", ctx.index)))
                    else:
                        acts.append(Listen())
                fbs = yield Steps(tuple(acts))
                heard += sum(
                    1 for f in fbs
                    if f not in (None, ()) and not isinstance(f, str)
                )
            elif roll < 0.78 and duplex:
                fbs = yield Repeat(SendListen(("x", ctx.index)), 1 + ctx.rng.randrange(2))
                heard += sum(1 for f in fbs if f)
            elif roll < 0.88:
                feedback = yield Listen()  # per-slot escape hatch
                if feedback not in (None, ()) and not isinstance(feedback, str):
                    heard += 1
            else:
                yield Idle(1 + ctx.rng.randrange(4))
        return (ctx.index, heard)

    return protocol


class TestPhaseSlotReferenceEquivalence:
    """Phase-compiled vs per-slot-expanded vs reference oracle."""

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_models_by_resolution(self, model_name, resolution):
        model = FIVE_MODELS[model_name]
        graph = random_gnp(9, 0.5, random.Random(5))
        protocol = _plan_protocol(12, duplex=False)
        for seed in (0, 3):
            slow = ReferenceSimulator(graph, model, seed=seed).run(protocol)
            for stepping in ("phase", "slot"):
                fast = Simulator(
                    graph, model, seed=seed,
                    exec_config=ExecutionConfig(
                        resolution=resolution, stepping=stepping
                    ),
                ).run(protocol)
                _assert_same(fast, slow)

    def test_full_duplex_clique(self):
        graph = clique(5)
        protocol = _plan_protocol(10, duplex=True)
        for seed in (0, 1):
            slow = ReferenceSimulator(graph, CD_FD, seed=seed).run(protocol)
            for stepping in ("phase", "slot"):
                fast = Simulator(
                    graph, CD_FD, seed=seed,
                    exec_config=ExecutionConfig(stepping=stepping),
                ).run(protocol)
                _assert_same(fast, slow)

    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_lossy_model(self, resolution):
        # Stateful per-transmission model: plans must preserve the
        # ascending-vertex reception order the oracle uses.
        graph = star_graph(6)
        protocol = _plan_protocol(10, duplex=False)
        for seed in (0, 2):
            slow = ReferenceSimulator(
                graph, LossyModel(NO_CD, 0.3, seed=77), seed=seed
            ).run(protocol)
            for stepping in ("phase", "slot"):
                fast = Simulator(
                    graph, LossyModel(NO_CD, 0.3, seed=77), seed=seed,
                    exec_config=ExecutionConfig(
                        resolution=resolution, stepping=stepping
                    ),
                ).run(protocol)
                _assert_same(fast, slow)

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_lockstep_matches_serial(self, model_name, resolution):
        model = FIVE_MODELS[model_name]
        graph = random_gnp(8, 0.5, random.Random(11))
        protocol = _plan_protocol(10, duplex=False)
        seeds = (0, 1, 5)
        serial = run_trials(graph, model, protocol, seeds)
        for stepping in ("phase", "slot"):
            lockstep = run_trials(
                graph, model, protocol, seeds,
                exec_config=ExecutionConfig(
                    lockstep=True, resolution=resolution, stepping=stepping
                ),
            )
            for a, b in zip(serial, lockstep):
                _assert_same(b, a)
                assert b.seed == a.seed

    def test_stepping_validation(self):
        with pytest.raises(ValueError, match="stepping"):
            ExecutionConfig(stepping="warp")
        # The deprecated kwarg path funnels through the same validation.
        with pytest.raises(ValueError, match="stepping"), pytest.warns(
            DeprecationWarning
        ):
            Simulator(path_graph(2), NO_CD, stepping="warp")
        with pytest.raises(ValueError, match="stepping"), pytest.warns(
            DeprecationWarning
        ):
            run_trials(
                path_graph(2), NO_CD, _plan_protocol(2, False), (0,),
                lockstep=True, stepping="warp",
            )


# ---------------------------------------------------------------------------
# Rewired paper protocols: phase path vs per-slot oracle
# ---------------------------------------------------------------------------


class TestRewiredProtocols:
    def _compare(self, graph, model, protocol, inputs=None, knowledge=None):
        runs = {}
        for stepping in ("phase", "slot"):
            runs[stepping] = Simulator(
                graph, model, seed=3, knowledge=knowledge,
                exec_config=ExecutionConfig(stepping=stepping),
            ).run(protocol, inputs=inputs)
        _assert_same(runs["phase"], runs["slot"])
        return runs

    def test_decay_broadcast(self):
        from repro.broadcast.base import source_inputs
        from repro.broadcast.flooding import decay_broadcast_protocol

        graph = random_gnp(12, 0.35, random.Random(2))
        runs = self._compare(
            graph, NO_CD, decay_broadcast_protocol(), source_inputs(0, "m"),
        )
        assert runs["phase"].outputs == ["m"] * graph.n
        # The stepping metric: phase-compiled frames re-enter their
        # generators far less often than the per-slot oracle.
        assert runs["phase"].gen_entries < runs["slot"].gen_entries / 1.4

    def test_local_flood(self):
        from repro.broadcast.base import source_inputs
        from repro.broadcast.flooding import local_flood_protocol

        graph = path_graph(7)
        runs = self._compare(
            graph, LOCAL, local_flood_protocol(), source_inputs(0, "m"),
            knowledge=Knowledge(n=7, max_degree=2, diameter=6),
        )
        assert runs["phase"].outputs == ["m"] * 7

    def test_sr_frames_on_star(self):
        from repro.core.sr_comm import DecayParams, Role, sr_nocd

        n = 9
        graph = star_graph(n)
        params = DecayParams.for_graph(n - 1, 0.05)
        roles = {0: Role.RECEIVER}
        roles.update({v: Role.SENDER for v in range(1, n)})

        def proto(ctx):
            result = yield from sr_nocd(
                ctx, roles[ctx.index], f"m{ctx.index}", params
            )
            return result

        self._compare(graph, NO_CD, proto)

    def test_gen_entries_plain_protocols_unchanged(self):
        # A plan-free protocol costs the same entries under both modes.
        def proto(ctx):
            for step in range(5):
                if (ctx.index + step) % 2:
                    yield Send("x")
                else:
                    yield Listen()
            return ctx.index

        graph = clique(4)
        runs = {
            stepping: Simulator(
                graph, NO_CD, seed=0,
                exec_config=ExecutionConfig(stepping=stepping),
            ).run(proto)
            for stepping in ("phase", "slot")
        }
        _assert_same(runs["phase"], runs["slot"])
        # 4 nodes x (5 per-action entries + 1 final StopIteration).
        assert runs["phase"].gen_entries == 4 * 6
        assert runs["slot"].gen_entries == 4 * 6


class TestExpandPlans:
    def test_passthrough_for_plain_generators(self):
        def gen():
            fb = yield Send("a")
            assert fb is None
            fb = yield Listen()
            return ("done", fb)

        driver = expand_plans(gen(), random.Random(0))
        assert next(driver) == Send("a")
        assert driver.send(None) == Listen()
        with pytest.raises(StopIteration) as stop:
            driver.send(SILENCE)
        assert stop.value.value == ("done", SILENCE)

    def test_expands_repeat(self):
        def gen():
            fbs = yield Repeat(Listen(), 3)
            return fbs

        driver = expand_plans(gen(), random.Random(0))
        assert next(driver) == Listen()
        assert driver.send("a") == Listen()
        assert driver.send("b") == Listen()
        with pytest.raises(StopIteration) as stop:
            driver.send("c")
        assert stop.value.value == ("a", "b", "c")
