"""The adversity layer: fault injection must be deterministic, valid at
every door, and byte-identical across every execution engine.

The core is the differential matrix: every fault family (churn, jamming,
Gilbert-Elliott burst loss — and their composition) run across the five
paper models x {list, bitmask, numpy} x {phase, slot} x {serial,
lock-step}, pinned against the reference oracle carrying the *same*
fault realization (built by the shared ``FaultPlan.for_trial``).  On
top: spec-grammar and parameter validation, schedule determinism and
query-order independence (sharding cannot change a fault realization),
the GE chain's convergence to its stationary loss rate, the SoA
fallback taxonomy, the events-ledger rendering of unknown future
verdicts, and the fabric's injected-crash harness under faults.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.graphs import path_graph, random_gnp, star_graph
from repro.sim import (
    BEEPING,
    CD,
    CD_STAR,
    LOCAL,
    NO_CD,
    ExecutionConfig,
    ExecutionConfigError,
    Idle,
    Listen,
    Send,
    numpy_available,
    run_trials,
)
from repro.sim.faults import (
    JAM_FEEDBACK,
    CrashSchedule,
    FaultPlan,
    GilbertElliottModel,
    JammedModel,
    PeriodicChurn,
    PeriodicJammer,
    RandomChurn,
    RandomJammer,
    ReactiveJammer,
    down_feedback,
    jam_feedback,
    parse_burst_loss_spec,
    parse_churn_spec,
    parse_fault_specs,
    parse_jam_spec,
    validate_fault_spec,
)
from repro.sim.feedback import BEEP, NOISE, SILENCE
from repro.sim.models import LossyModel
from repro.sim.reference import ReferenceSimulator

FIVE_MODELS = {
    "LOCAL": LOCAL,
    "CD": CD,
    "No-CD": NO_CD,
    "CD*": CD_STAR,
    "BEEP": BEEPING,
}

RESOLUTIONS = ("bitmask", "list") + (("numpy",) if numpy_available() else ())

FAULT_CONFIGS = {
    "churn-periodic": dict(churn="periodic:period=10,down=3,stagger=2"),
    "churn-random": dict(churn="random:p=0.4,period=12,down=5"),
    "jam-periodic": dict(jam="periodic:period=4,offset=1"),
    "jam-random": dict(jam="random:rate=0.3"),
    "jam-reactive": dict(jam="reactive:min=1"),
    "burst-loss": dict(burst_loss="p_gb=0.2,p_bg=0.4,good=0.05,bad=0.9"),
    "all-three": dict(
        churn="periodic:period=10,down=3,stagger=2",
        jam="random:rate=0.2",
        burst_loss="p_gb=0.2,p_bg=0.4",
    ),
}


def _random_protocol(steps: int):
    def protocol(ctx):
        heard = 0
        for step in range(steps):
            roll = ctx.rng.random()
            if roll < 0.35:
                yield Send(("m", ctx.index, step))
            elif roll < 0.75:
                feedback = yield Listen()
                if feedback not in (None, (), SILENCE, NOISE, BEEP):
                    heard += 1
            else:
                yield Idle(1 + ctx.rng.randrange(3))
        return (ctx.index, heard)

    return protocol


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.outputs == y.outputs
        assert x.finish_slot == y.finish_slot
        assert x.duration == y.duration
        assert [e.total for e in x.energy] == [e.total for e in y.energy]
        assert [e.sends for e in x.energy] == [e.sends for e in y.energy]
        assert [e.listens for e in x.energy] == [e.listens for e in y.energy]


# --- spec grammar and parameter validation ---------------------------------


class TestSpecValidation:
    def test_churn_specs_parse(self):
        assert parse_churn_spec("periodic:period=8,down=2")["policy"] == "periodic"
        assert parse_churn_spec("periodic:period=8,down=2,stagger=3")["stagger"] == 3
        assert parse_churn_spec("random:p=0.5,period=10,down=4")["p"] == 0.5

    def test_jam_specs_parse(self):
        assert parse_jam_spec("periodic:period=5")["policy"] == "periodic"
        assert parse_jam_spec("periodic:period=5,offset=2")["offset"] == 2
        assert parse_jam_spec("random:rate=0.25")["rate"] == 0.25
        assert parse_jam_spec("reactive")["policy"] == "reactive"
        assert parse_jam_spec("reactive:min=3")["min"] == 3

    def test_burst_loss_specs_parse(self):
        params = parse_burst_loss_spec("p_gb=0.1,p_bg=0.3,good=0.05,bad=0.9")
        assert params["p_gb"] == 0.1 and params["bad"] == 0.9

    @pytest.mark.parametrize("field,spec", [
        ("churn", "nonsense"),
        ("churn", "periodic:period=0,down=0"),
        ("churn", "periodic:period=4,down=9"),
        ("churn", "random:p=1.5,period=4,down=1"),
        ("jam", "periodic"),
        ("jam", "random:rate=2"),
        ("jam", "random:rate=-0.1"),
        ("burst_loss", "p_gb=1.5,p_bg=0.2"),
        ("burst_loss", "p_gb=0.2"),
        ("burst_loss", "p_gb=0.2,p_bg=0.3,bad=7"),
    ])
    def test_bad_specs_rejected(self, field, spec):
        with pytest.raises(ValueError):
            validate_fault_spec(field, spec)

    def test_config_door_names_the_field(self):
        with pytest.raises(ExecutionConfigError, match="churn"):
            ExecutionConfig(churn="periodic:period=0,down=0")
        with pytest.raises(ExecutionConfigError, match="jam"):
            ExecutionConfig(jam="bogus:x=1")
        with pytest.raises(ExecutionConfigError, match="burst_loss"):
            ExecutionConfig(burst_loss="p_gb=2,p_bg=0.1")

    def test_ge_rates_validated(self):
        with pytest.raises(ValueError):
            GilbertElliottModel(NO_CD, p_gb=1.2, p_bg=0.5)
        with pytest.raises(ValueError):
            GilbertElliottModel(NO_CD, p_gb=0.2, p_bg=0.5, bad_rate=-0.1)
        GilbertElliottModel(NO_CD, p_gb=0.0, p_bg=1.0, good_rate=0.0,
                            bad_rate=1.0)

    def test_lossy_model_bounds_inclusive(self):
        LossyModel(NO_CD, 0.0)
        LossyModel(NO_CD, 1.0)
        with pytest.raises(ValueError, match=r"\[0,1\]"):
            LossyModel(NO_CD, 1.01)
        with pytest.raises(ValueError, match=r"\[0,1\]"):
            LossyModel(NO_CD, -0.5)

    def test_lossy_model_seed_rng_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            LossyModel(NO_CD, 0.5, seed=3, rng=random.Random(3))

    def test_campaign_row_rejects_bad_loss_rate(self):
        from repro.campaign.registry import execute_cell_block

        with pytest.raises(ExecutionConfigError, match="decay.*loss_rate"):
            execute_cell_block("decay", 16, [0], {"loss_rate": 1.5})
        with pytest.raises(ExecutionConfigError, match="decay.*loss_rate"):
            execute_cell_block("decay", 16, [0], {"loss_rate": "bogus"})

    def test_campaign_row_rejects_bad_fault_spec(self):
        from repro.campaign.registry import execute_cell_block

        with pytest.raises(ExecutionConfigError, match="churn"):
            execute_cell_block("decay", 16, [0], {"churn": "periodic:period=0,down=0"})


# --- schedules: determinism and query-order independence -------------------


class TestSchedules:
    def test_crash_schedule_explicit_intervals(self):
        schedule = CrashSchedule({0: [(2, 5)], 3: [(0, 1), (7, 9)]})
        assert not schedule.down(0, 1)
        assert schedule.down(0, 2) and schedule.down(0, 4)
        assert not schedule.down(0, 5)  # half-open
        assert schedule.down(3, 0) and schedule.down(3, 8)
        assert not schedule.down(1, 3)

    def test_crash_schedule_rejects_bad_intervals(self):
        with pytest.raises(ValueError):
            CrashSchedule({0: [(5, 2)]})
        with pytest.raises(ValueError):
            CrashSchedule({0: [(-1, 2)]})

    def test_periodic_churn_window(self):
        churn = PeriodicChurn(period=10, down=3, stagger=2)
        for v in range(4):
            for slot in range(40):
                assert churn.down(v, slot) == (
                    (slot - 2 * v) % 10 < 3
                ), (v, slot)

    def test_random_churn_is_query_order_independent(self):
        a = RandomChurn(p=0.5, period=9, down=4, seed=7)
        b = RandomChurn(p=0.5, period=9, down=4, seed=7)
        queries = [(v, s) for v in range(5) for s in range(60)]
        forward = {q: a.down(*q) for q in queries}
        rng = random.Random(0)
        shuffled = list(queries)
        rng.shuffle(shuffled)
        backward = {q: b.down(*q) for q in shuffled}
        assert forward == backward
        assert any(forward.values()) and not all(forward.values())

    def test_random_jammer_is_per_slot_stateless(self):
        a = RandomJammer(rate=0.4, seed=11)
        b = RandomJammer(rate=0.4, seed=11)
        slots = list(range(200))
        forward = [a.jams(s, 1) for s in slots]
        backward = [b.jams(s, 1) for s in reversed(slots)]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)

    def test_periodic_and_reactive_jammers(self):
        jam = PeriodicJammer(period=5, offset=2)
        assert [jam.jams(s, 0) for s in range(6)] == [
            False, False, True, False, False, False,
        ]
        reactive = ReactiveJammer(minimum=2)
        assert not reactive.jams(0, 1)
        assert reactive.jams(0, 2) and reactive.jams(9, 5)

    def test_fault_plan_is_shard_independent(self):
        """A trial's fault realization depends only on (spec, seed) —
        the identity campaign sharding preserves."""
        plan = parse_fault_specs(ExecutionConfig(
            churn="random:p=0.5,period=8,down=3", jam="random:rate=0.3",
        ))
        for seed in (0, 3, 17):
            _, churn_a = plan.for_trial(NO_CD, seed)
            _, churn_b = plan.for_trial(NO_CD, seed)
            jam_a = plan.build_jammer(seed)
            jam_b = plan.build_jammer(seed)
            for slot in range(50):
                assert jam_a.jams(slot, 1) == jam_b.jams(slot, 1)
                for v in range(4):
                    assert churn_a.down(v, slot) == churn_b.down(v, slot)


# --- feedback tables -------------------------------------------------------


class TestFeedback:
    def test_jam_feedback_covers_all_stock_models(self):
        from repro.sim.models import MODELS

        for name, model in MODELS.items():
            assert jam_feedback(model) is JAM_FEEDBACK[name]

    def test_jam_feedback_unwraps_wrappers(self):
        wrapped = JammedModel(
            GilbertElliottModel(CD, p_gb=0.1, p_bg=0.5), PeriodicJammer(3)
        )
        assert jam_feedback(wrapped) is NOISE

    def test_down_feedback_is_models_empty_reception(self):
        assert down_feedback(LOCAL) == ()
        assert down_feedback(CD) is SILENCE
        assert down_feedback(GilbertElliottModel(LOCAL, 0.1, 0.5)) == ()

    def test_jam_feedback_rejects_unknown_models(self):
        class Odd:
            name = "exotic"

        with pytest.raises(ValueError, match="exotic"):
            jam_feedback(Odd())


# --- the differential matrix -----------------------------------------------


@pytest.mark.parametrize("fault_name", sorted(FAULT_CONFIGS))
@pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
def test_fault_matrix_serial_lockstep_reference(fault_name, model_name):
    """Every fault family x model: serial == lock-step == oracle, for
    every resolution backend and both steppings."""
    fault = FAULT_CONFIGS[fault_name]
    model = FIVE_MODELS[model_name]
    graph = path_graph(8)
    protocol = _random_protocol(25)
    seeds = [0, 1, 2]
    for resolution in RESOLUTIONS:
        for stepping in ("phase", "slot"):
            config = ExecutionConfig(
                resolution=resolution, stepping=stepping, **fault
            )
            serial = run_trials(graph, model, protocol, seeds,
                                exec_config=config)
            lock = run_trials(graph, model, protocol, seeds,
                              exec_config=config.replace(lockstep=True))
            _assert_same_results(serial, lock)
            plan = parse_fault_specs(config)
            for seed, result in zip(seeds, serial):
                wrapped, churn = plan.for_trial(model, seed)
                oracle = ReferenceSimulator(
                    graph, wrapped, seed=seed, churn=churn
                ).run(protocol)
                assert oracle.outputs == result.outputs
                assert oracle.duration == result.duration
                assert oracle.finish_slot == result.finish_slot
                assert [e.total for e in oracle.energy] \
                    == [e.total for e in result.energy]


def test_fault_matrix_other_graphs():
    """Spot-check the composition config on non-path topologies."""
    fault = FAULT_CONFIGS["all-three"]
    protocol = _random_protocol(20)
    for graph in (
        star_graph(7),
        random_gnp(10, 0.4, random.Random(5), ensure_connected=True),
    ):
        config = ExecutionConfig(**fault)
        serial = run_trials(graph, NO_CD, protocol, [0, 1],
                            exec_config=config)
        lock = run_trials(graph, NO_CD, protocol, [0, 1],
                          exec_config=config.replace(lockstep=True))
        _assert_same_results(serial, lock)


# --- SoA engagement and fallback taxonomy ----------------------------------


class TestSoAReasons:
    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    @pytest.mark.parametrize("fault,expected", [
        (dict(churn="periodic:period=8,down=2"), "churn"),
        (dict(jam="random:rate=0.2"), "jammer"),
        (dict(burst_loss="p_gb=0.1,p_bg=0.3"), "ok"),
        (dict(), "ok"),
    ])
    def test_verdicts(self, fault, expected):
        graph = path_graph(6)
        config = ExecutionConfig(lockstep=True, resolution="numpy", **fault)
        results = run_trials(graph, NO_CD, _random_protocol(15), [0, 1, 2],
                             exec_config=config)
        assert results[0].soa_reason == expected

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_ge_factory_models_fall_back_as_burst_loss(self):
        """Per-seed model factories break the shared-inner admission
        check: the verdict must say burst_loss, and results must still
        match serial."""
        graph = path_graph(6)
        config = ExecutionConfig(
            lockstep=True, resolution="numpy",
            burst_loss="p_gb=0.1,p_bg=0.3",
            model_factory=lambda seed: LossyModel(NO_CD, 0.2, seed=seed),
        )
        results = run_trials(graph, NO_CD, _random_protocol(15), [0, 1],
                             exec_config=config)
        assert results[0].soa_reason == "burst_loss"
        serial = run_trials(
            graph, NO_CD, _random_protocol(15), [0, 1],
            exec_config=config.replace(lockstep=False, resolution="bitmask"),
        )
        _assert_same_results(serial, results)

    def test_aggregate_skips_soa_reason_keys(self):
        from repro.campaign.cells import CellResult, aggregate_cells

        cells = [
            CellResult(label="x", size=8, n=8, max_degree=2, diameter=3,
                       seed=s, delivered=True, duration=10.0,
                       max_energy=4.0, mean_energy=2.0,
                       extras={"soa": 1.0, "soa_reason_ok": 1.0})
            for s in (0, 1)
        ]
        point = aggregate_cells(cells)
        assert "soa" not in point.extras
        assert not any(k.startswith("soa_reason_") for k in point.extras)


# --- events ledger: open verdict vocabulary --------------------------------


class TestEventsLedger:
    def test_unknown_reasons_render_gracefully(self):
        from repro.campaign.fabric import (
            render_events_summary,
            summarize_events,
        )

        events = [
            {"ev": "run_started", "campaign": "x", "total": 2, "cached": 0,
             "pending": 2, "workers": 1},
            # Old-ledger event: no soa_reasons at all.
            {"ev": "block_completed", "block": 0, "worker": 0, "ok": 1,
             "failed": 0, "elapsed": 0.1, "soa": 1},
            # Future-ledger event: a verdict this build has never heard of.
            {"ev": "block_completed", "block": 1, "worker": 0, "ok": 1,
             "failed": 0, "elapsed": 0.1, "soa": 0,
             "soa_reasons": {"quantum_decoherence": 1, "ok": 1}},
            {"ev": "run_completed", "ok": 2, "errors": 0, "timeouts": 0,
             "quarantined": 0, "retries": 0, "elapsed": 0.2},
        ]
        summary = summarize_events(events)
        assert summary["last_run"]["soa_reasons"] == {
            "quantum_decoherence": 1, "ok": 1,
        }
        text = render_events_summary(summary)
        assert "quantum_decoherence=1" in text

    def test_worker_status_tuple_recovers_reason(self):
        from repro.campaign.fabric.workers import _soa_reason

        assert _soa_reason({"soa": 0.0, "soa_reason_churn": 1.0}) == "churn"
        assert _soa_reason({"soa": 1.0, "soa_reason_ok": 1.0}) == "ok"
        assert _soa_reason({"soa": 1.0}) is None
        assert _soa_reason({}) is None


# --- degradation report ----------------------------------------------------


class TestDegradation:
    def test_fault_degradation_rows(self):
        from repro.campaign.cells import SweepPoint
        from repro.experiments.analysis import fault_degradation

        def point(n, time, energy, delivered, seeds=4):
            return SweepPoint(
                label="x", n=n, max_degree=3, diameter=4, seeds=seeds,
                delivered=delivered, time_median=time,
                max_energy_median=energy, mean_energy_median=energy / 2,
            )

        clean = [point(8, 100.0, 10.0, 4), point(16, 200.0, 20.0, 4)]
        faulted = [point(8, 150.0, 12.0, 2), point(32, 999.0, 99.0, 0)]
        rows = fault_degradation(clean, faulted)
        assert len(rows) == 1  # n=32 has no clean twin
        row = rows[0]
        assert row["n"] == 8
        assert row["time_ratio"] == pytest.approx(1.5)
        assert row["energy_ratio"] == pytest.approx(1.2)
        assert row["success_clean"] == 1.0
        assert row["success_faulted"] == 0.5

    def test_render_degradation_end_to_end(self, tmp_path):
        from repro.campaign import (
            CampaignSpec,
            CampaignStore,
            render_degradation,
            run_campaign,
        )

        spec = CampaignSpec.from_dict({
            "name": "degtest",
            "rows": [
                {"row": "path", "sizes": [32], "seeds": [0, 1]},
                {"row": "path", "sizes": [32], "seeds": [0, 1],
                 "options": {"burst_loss": "p_gb=0.03,p_bg=0.3,bad=0.7"}},
            ],
        })
        store = CampaignStore(os.path.join(str(tmp_path), "results.jsonl"))
        report = run_campaign(spec, store, progress=None)
        assert report.ok == 4
        text = render_degradation(spec, store)
        assert "vs clean twin path" in text
        assert "burst_loss=p_gb=0.03" in text

    def test_render_degradation_without_faulted_rows(self, tmp_path):
        from repro.campaign import (
            CampaignSpec,
            CampaignStore,
            render_degradation,
        )

        spec = CampaignSpec.from_dict({
            "name": "nofaults",
            "rows": [{"row": "path", "sizes": [32], "seeds": [0]}],
        })
        store = CampaignStore(os.path.join(str(tmp_path), "results.jsonl"))
        assert "no faulted rows" in render_degradation(spec, store)


# --- campaigns: sharding independence and crash harness --------------------


def _points_blob(points):
    return json.dumps(
        {k: [vars(p) for p in v] for k, v in points.items()},
        sort_keys=True, default=str,
    )


class TestFaultedCampaigns:
    SPEC = {
        "name": "faultcamp",
        "rows": [
            {"row": "decay", "sizes": [16], "seeds": [0, 1, 2]},
            {"row": "decay", "sizes": [16], "seeds": [0, 1, 2],
             "options": {"churn": "random:p=0.3,period=20,down=6",
                         "jam": "periodic:period=9",
                         "burst_loss": "p_gb=0.05,p_bg=0.25"}},
        ],
    }

    def test_fabric_sharding_matches_serial(self, tmp_path):
        from repro.campaign import (
            CampaignSpec,
            CampaignStore,
            aggregate_campaign,
            run_campaign,
            run_campaign_fabric,
        )

        spec = CampaignSpec.from_dict(self.SPEC)
        serial = CampaignStore(os.path.join(str(tmp_path), "s.jsonl"))
        run_campaign(spec, serial, progress=None)
        fabric = CampaignStore(os.path.join(str(tmp_path), "f", "r.jsonl"))
        report = run_campaign_fabric(
            spec, fabric, workers=2, backoff=0.05, heartbeat=0.2,
        )
        assert report.all_ok
        assert _points_blob(aggregate_campaign(spec, serial)) \
            == _points_blob(aggregate_campaign(spec, fabric))

    def test_injected_crash_under_faults(self, tmp_path, monkeypatch):
        """The fabric's crash-retry harness must preserve byte-identity
        for faulted rows too (a retried trial re-realizes the identical
        fault schedule from its seed)."""
        from repro.campaign import (
            CampaignSpec,
            CampaignStore,
            aggregate_campaign,
            run_campaign,
            run_campaign_fabric,
        )
        from repro.campaign.fabric import CRASH_ENV

        spec = CampaignSpec.from_dict(self.SPEC)
        serial = CampaignStore(os.path.join(str(tmp_path), "s.jsonl"))
        run_campaign(spec, serial, progress=None)
        marker = str(tmp_path / "crash.marker")
        monkeypatch.setenv(CRASH_ENV, marker)
        fabric = CampaignStore(os.path.join(str(tmp_path), "f", "r.jsonl"))
        report = run_campaign_fabric(
            spec, fabric, workers=2, backoff=0.05, heartbeat=0.2,
        )
        assert os.path.exists(marker)
        assert report.workers_died >= 1 and report.retries >= 1
        assert report.all_ok
        assert _points_blob(aggregate_campaign(spec, serial)) \
            == _points_blob(aggregate_campaign(spec, fabric))

    def test_resume_is_zero_new_cells(self, tmp_path):
        from repro.campaign import CampaignSpec, CampaignStore, run_campaign

        spec = CampaignSpec.from_dict(self.SPEC)
        store = CampaignStore(os.path.join(str(tmp_path), "r.jsonl"))
        first = run_campaign(spec, store, progress=None)
        assert first.ok == 6 and first.skipped == 0
        second = run_campaign(spec, store, progress=None)
        assert second.ok == 0 and second.skipped == 6


# --- hypothesis properties -------------------------------------------------


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

rates = st.floats(min_value=0.1, max_value=0.9)


class TestHypothesisProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p=st.floats(min_value=0.05, max_value=0.95),
        period=st.integers(min_value=2, max_value=30),
        down=st.integers(min_value=1, max_value=6),
    )
    def test_random_churn_schedules_survive_sharding(self, seed, p, period, down):
        """The schedule a shard reconstructs from (spec, seed) is the
        one the serial run used — regardless of which slots/nodes each
        engine happens to query, or in what order."""
        down = min(down, period)
        make = lambda: RandomChurn(p=p, period=period, down=down, seed=seed)
        queries = [(v, s) for v in range(4) for s in range(3 * period)]
        reference = {q: make().down(*q) for q in queries}
        replay = make()
        rng = random.Random(seed)
        shuffled = list(queries)
        rng.shuffle(shuffled)
        for q in shuffled:
            assert replay.down(*q) == reference[q]

    @settings(max_examples=20, deadline=None)
    @given(p_gb=rates, p_bg=rates, seed=st.integers(0, 1000))
    def test_ge_chain_converges_to_stationary_loss(self, p_gb, p_bg, seed):
        """The empirical loss rate of a long GE run approaches the
        stationary loss the model advertises as ``loss_rate``."""
        model = GilbertElliottModel(
            NO_CD, p_gb=p_gb, p_bg=p_bg, good_rate=0.1, bad_rate=0.9,
            seed=seed,
        )
        slots = 5000
        lost = 0
        for slot in range(slots):
            model.begin_slot(slot, 1)
            if model.resolve(["m"]) is SILENCE:
                lost += 1
        assert lost / slots == pytest.approx(model.loss_rate, abs=0.08)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        fault=st.sampled_from(sorted(FAULT_CONFIGS)),
    )
    def test_fault_runs_are_reproducible(self, seed, fault):
        """Same (config, seed) -> byte-identical run, every time."""
        graph = path_graph(6)
        config = ExecutionConfig(**FAULT_CONFIGS[fault])
        protocol = _random_protocol(12)
        a = run_trials(graph, NO_CD, protocol, [seed], exec_config=config)
        b = run_trials(graph, NO_CD, protocol, [seed], exec_config=config)
        _assert_same_results(a, b)
