"""Tests for SR-communication (Lemmas 7, 8, 24; Remark 9)."""

from __future__ import annotations

import pytest

from repro.core.sr_comm import (
    CDParams,
    DecayParams,
    Role,
    det_frame_length,
    sr_cd,
    sr_det_cd,
    sr_det_cd_payload,
    sr_local,
    sr_nocd,
)
from repro.graphs import Graph, clique, k2k_gadget, path_graph, star_graph
from repro.sim import CD, LOCAL, NO_CD, Simulator


def _run_sr(graph, model, roles, messages, maker, seed=0):
    """Drive one SR frame: roles/messages are per-vertex; maker(ctx, role,
    message) returns the generator."""

    def proto(ctx):
        role = roles[ctx.index]
        message = messages.get(ctx.index)
        result = yield from maker(ctx, role, message)
        return result

    return Simulator(graph, model, seed=seed).run(proto)


class TestDecayNoCD:
    def test_single_sender_delivers(self):
        params = DecayParams.for_graph(2, 0.01)
        roles = {0: Role.SENDER, 1: Role.RECEIVER}
        result = _run_sr(
            path_graph(2),
            NO_CD,
            roles,
            {0: "m"},
            lambda c, r, m: sr_nocd(c, r, m, params),
        )
        assert result.outputs[1] == "m"

    def test_high_contention_star(self):
        # Star center listens; all leaves send.  Decay must break the tie.
        n = 17
        g = star_graph(n)
        params = DecayParams.for_graph(n - 1, 0.01)
        roles = {0: Role.RECEIVER}
        roles.update({v: Role.SENDER for v in range(1, n)})
        messages = {v: f"m{v}" for v in range(1, n)}
        delivered = 0
        for seed in range(8):
            result = _run_sr(
                g, NO_CD, roles, messages, lambda c, r, m: sr_nocd(c, r, m, params),
                seed=seed,
            )
            if result.outputs[0] in messages.values():
                delivered += 1
        assert delivered >= 7  # f = 0.01 per frame

    def test_receiver_stops_listening_after_reception(self):
        params = DecayParams.for_graph(2, 0.001)
        roles = {0: Role.SENDER, 1: Role.RECEIVER}
        result = _run_sr(
            path_graph(2), NO_CD, roles, {0: "m"},
            lambda c, r, m: sr_nocd(c, r, m, params),
        )
        # Energy far below the full frame once the message lands early.
        assert result.energy[1].total <= 2 * params.slots_per_phase

    def test_idle_role_consumes_frame_without_energy(self):
        params = DecayParams.for_graph(4, 0.05)
        g = path_graph(3)
        roles = {0: Role.SENDER, 1: Role.RECEIVER, 2: Role.IDLE}
        result = _run_sr(g, NO_CD, roles, {0: "m"},
                         lambda c, r, m: sr_nocd(c, r, m, params))
        assert result.energy[2].total == 0
        assert result.outputs[1] == "m"

    def test_frame_lengths_align(self):
        params = DecayParams.for_graph(8, 0.02)
        g = path_graph(3)
        roles = {0: Role.SENDER, 1: Role.RECEIVER, 2: Role.IDLE}

        def proto(ctx):
            yield from sr_nocd(ctx, roles[ctx.index], "m", params)
            return ctx.time

        result = Simulator(g, NO_CD, seed=0).run(proto)
        assert len(set(result.outputs)) == 1
        assert result.outputs[0] == params.frame_length

    def test_params_validation(self):
        with pytest.raises(ValueError):
            DecayParams.for_graph(4, 0.0)


class TestCDGeneric:
    def test_single_sender(self):
        params = CDParams.for_graph(2, 0.01)
        roles = {0: Role.SENDER, 1: Role.RECEIVER}
        result = _run_sr(
            path_graph(2), CD, roles, {0: "m"},
            lambda c, r, m: sr_cd(c, r, m, params),
        )
        assert result.outputs[1] == "m"

    def test_high_contention_receiver_energy_is_small(self):
        n = 33
        g = star_graph(n)
        params = CDParams.for_graph(n - 1, 0.02)
        roles = {0: Role.RECEIVER}
        roles.update({v: Role.SENDER for v in range(1, n)})
        messages = {v: f"m{v}" for v in range(1, n)}
        got = 0
        max_receiver_energy = 0
        for seed in range(8):
            result = _run_sr(
                g, CD, roles, messages, lambda c, r, m: sr_cd(c, r, m, params),
                seed=seed,
            )
            if result.outputs[0] in messages.values():
                got += 1
            max_receiver_energy = max(max_receiver_energy, result.energy[0].total)
        assert got >= 7
        # Receiver listens once per epoch: energy <= #epochs, far below the
        # full frame length.
        assert max_receiver_energy <= params.epochs
        assert params.frame_length > 3 * params.epochs

    def test_probe_opt_out_saves_energy(self):
        # Receiver with no sender neighbor pays O(1) with probes.
        g = path_graph(3)  # 0 - 1 - 2; sender 0, receiver 2 (not adjacent)
        params = CDParams.for_graph(2, 0.02, probe=True)
        roles = {0: Role.SENDER, 1: Role.IDLE, 2: Role.RECEIVER}
        result = _run_sr(g, CD, roles, {0: "m"},
                         lambda c, r, m: sr_cd(c, r, m, params))
        assert result.outputs[2] is None
        assert result.energy[2].total <= 2

    def test_probe_sender_without_receiver_opts_out(self):
        g = path_graph(3)
        params = CDParams.for_graph(2, 0.02, probe=True)
        roles = {0: Role.RECEIVER, 1: Role.IDLE, 2: Role.SENDER}
        result = _run_sr(g, CD, roles, {2: "m"},
                         lambda c, r, m: sr_cd(c, r, m, params))
        assert result.energy[2].total <= 2

    def test_probe_still_delivers_when_adjacent(self):
        params = CDParams.for_graph(2, 0.01, probe=True)
        roles = {0: Role.SENDER, 1: Role.RECEIVER}
        result = _run_sr(path_graph(2), CD, roles, {0: "m"},
                         lambda c, r, m: sr_cd(c, r, m, params))
        assert result.outputs[1] == "m"

    def test_ack_lets_senders_terminate_early(self):
        # K_{2,k} flipped: middle vertices send, s and t receive; each
        # sender is adjacent to both receivers, so use a star to honour the
        # <=1 receiver-neighbor precondition of the ack variant.
        n = 9
        g = star_graph(n)
        params = CDParams.for_graph(n - 1, 0.01, ack=True)
        params_no = CDParams.for_graph(n - 1, 0.01, ack=False)
        roles = {0: Role.RECEIVER}
        roles.update({v: Role.SENDER for v in range(1, n)})
        messages = {v: f"m{v}" for v in range(1, n)}
        with_ack = _run_sr(g, CD, roles, messages,
                           lambda c, r, m: sr_cd(c, r, m, params), seed=3)
        without = _run_sr(g, CD, roles, messages,
                          lambda c, r, m: sr_cd(c, r, m, params_no), seed=3)
        assert with_ack.outputs[0] in messages.values()
        sender_ack = max(with_ack.energy[v].total for v in range(1, n))
        sender_no = max(without.energy[v].total for v in range(1, n))
        assert sender_ack <= sender_no

    def test_frame_lengths_align(self):
        params = CDParams.for_graph(8, 0.02, probe=True)
        g = path_graph(3)
        roles = {0: Role.SENDER, 1: Role.RECEIVER, 2: Role.IDLE}

        def proto(ctx):
            yield from sr_cd(ctx, roles[ctx.index], "m", params)
            return ctx.time

        result = Simulator(g, CD, seed=0).run(proto)
        assert set(result.outputs) == {params.frame_length}


class TestLocal:
    def test_one_slot_delivery(self):
        roles = {0: Role.SENDER, 1: Role.RECEIVER}
        result = _run_sr(path_graph(2), LOCAL, roles, {0: "m"}, sr_local)
        assert result.outputs[1] == "m"
        assert result.duration == 1

    def test_receiver_gets_lowest_index_message(self):
        g = star_graph(4)
        roles = {0: Role.RECEIVER, 1: Role.SENDER, 2: Role.SENDER, 3: Role.SENDER}
        result = _run_sr(g, LOCAL, roles, {1: "a", 2: "b", 3: "c"}, sr_local)
        assert result.outputs[0] == "a"

    def test_slots_argument_guard(self):
        with pytest.raises(ValueError):
            list(sr_local(None, Role.IDLE, None, slots=2))


class TestDeterministicCD:
    def test_min_value_learned(self):
        g = star_graph(5)
        space = 16
        values = {1: 9, 2: 3, 3: 12, 4: 7}
        roles = {0: Role.RECEIVER}
        roles.update({v: Role.SENDER for v in values})
        result = _run_sr(g, CD, roles, values,
                         lambda c, r, m: sr_det_cd(c, r, m, space))
        assert result.outputs[0] == 3

    def test_both_role_folds_own_value(self):
        g = path_graph(2)
        space = 8
        roles = {0: Role.BOTH, 1: Role.BOTH}
        values = {0: 5, 1: 2}

        def maker(ctx, role, message):
            return sr_det_cd(ctx, role, values[ctx.index], space)

        result = _run_sr(g, CD, roles, values, maker)
        assert result.outputs == [2, 2]

    def test_receiver_with_no_sender_returns_none(self):
        g = path_graph(3)
        roles = {0: Role.SENDER, 1: Role.IDLE, 2: Role.RECEIVER}
        result = _run_sr(g, CD, roles, {0: 1},
                         lambda c, r, m: sr_det_cd(c, r, m, 8))
        assert result.outputs[2] is None

    def test_energy_logarithmic_in_space(self):
        space = 256
        g = star_graph(9)
        values = {v: (v * 29) % space for v in range(1, 9)}
        roles = {0: Role.RECEIVER}
        roles.update({v: Role.SENDER for v in values})
        result = _run_sr(g, CD, roles, values,
                         lambda c, r, m: sr_det_cd(c, r, m, space))
        assert result.outputs[0] == min(values.values())
        # Receiver: <=2 listens per bit; senders: 1 send per bit.
        assert result.energy[0].total <= 2 * 8
        assert all(result.energy[v].total <= 8 for v in range(1, 9))
        assert result.duration <= det_frame_length(space)

    def test_frame_alignment(self):
        space = 32
        g = path_graph(3)
        roles = {0: Role.SENDER, 1: Role.RECEIVER, 2: Role.IDLE}

        def proto(ctx):
            value = 4 if roles[ctx.index] is Role.SENDER else None
            yield from sr_det_cd(ctx, roles[ctx.index], value, space)
            return ctx.time

        result = Simulator(g, CD, seed=0).run(proto)
        assert set(result.outputs) == {det_frame_length(space)}

    def test_sender_needs_value(self):
        with pytest.raises(ValueError):
            list(sr_det_cd(None, Role.SENDER, None, 8))

    def test_value_range_checked(self):
        with pytest.raises(ValueError):
            list(sr_det_cd(None, Role.SENDER, 99, 8))

    def test_payload_variant_delivers_arbitrary_objects(self):
        g = star_graph(4)
        id_space = 8
        payloads = {1: ("big", "object", 1), 2: ("x",), 3: ("y", 2)}
        roles = {0: Role.RECEIVER, 1: Role.SENDER, 2: Role.SENDER, 3: Role.SENDER}

        def proto(ctx):
            role = roles[ctx.index]
            payload = payloads.get(ctx.index)
            result = yield from sr_det_cd_payload(
                ctx, role, ctx.uid if role is Role.SENDER else None,
                payload, id_space,
            )
            return result

        result = Simulator(g, CD, seed=0).run(proto)
        # Lowest sender uid is vertex 1 (uid 2).
        assert result.outputs[0] == (2, payloads[1])
