"""T1.det.noCD.LB — Theorem 2's deterministic row: Omega(Delta) energy in
deterministic No-CD via the [18] single-hop time bound.

The paper gives no deterministic No-CD broadcast upper bound (that's the
row's message — it is expensive); we execute the reduction machinery on
the K_{2,k} gadget against randomized decay to demonstrate the transcript
extraction, and we verify the deterministic CD algorithm escapes the
Omega(Delta) fate: its energy stays polylogarithmic while Delta = k grows.
"""

from conftest import run_once

from repro.broadcast import run_broadcast
from repro.broadcast.deterministic import det_cd_broadcast_protocol
from repro.graphs import k2k_gadget
from repro.sim import CD, Knowledge


def test_det_cd_energy_sublinear_in_delta(benchmark):
    def measure():
        rows = []
        for k in (2, 4, 8):
            graph, s, t = k2k_gadget(k)
            knowledge = Knowledge(
                n=graph.n, max_degree=graph.max_degree, diameter=2,
                id_space=graph.n,
            )
            outcome = run_broadcast(
                graph, CD, det_cd_broadcast_protocol(), source=s,
                knowledge=knowledge, seed=0,
            )
            rows.append((k, outcome.delivered, outcome.max_energy))
        return rows

    rows = run_once(benchmark, measure)
    print("\nT1.det.noCD.LB  det-CD energy on K_{2,k} (escapes Omega(Delta)):")
    import math

    ratios = []
    for k, delivered, energy in rows:
        n = k + 2
        bound = math.log2(n) ** 3 * math.log2(n)  # Theorem 27's polylog
        ratios.append(energy / bound)
        print(
            f"  k={k:2d} delivered={delivered} max_energy={energy} "
            f"energy/log^4 n = {energy / bound:.1f}"
        )
    assert all(delivered for _, delivered, _ in rows)
    # Energy tracks Theorem 27's polylog (ratio non-increasing-ish), not
    # the Omega(Delta) fate of deterministic No-CD.
    assert ratios[-1] <= 1.5 * ratios[0]
