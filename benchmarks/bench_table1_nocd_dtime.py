"""T1.noCD.2 — Theorem 16: O(D^{1+eps} polylog n) time, polylog energy.

Caveat (DESIGN.md): the asymptotic D-advantage needs sizes beyond laptop
simulation; here we verify correctness, polylog-scale energy, and the
time/energy ordering versus the flat clustering algorithm.
"""

from conftest import run_once

from repro.experiments import t1_nocd_dtime


def test_t1_nocd_dtime(benchmark):
    points, table = run_once(
        benchmark, t1_nocd_dtime, sizes=(8, 12, 16), seeds=(0, 1)
    )
    print("\n" + table)
    assert all(p.delivered >= p.seeds - 1 for p in points)
