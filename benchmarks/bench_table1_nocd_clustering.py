"""T1.noCD.1 — Theorem 11 in No-CD: O(n logD log^2 n) time,
O(logD log^2 n) energy (logD = log Delta)."""

import math

from conftest import run_once

from repro.experiments import t1_nocd_clustering


def test_t1_nocd_clustering(benchmark):
    points, table = run_once(
        benchmark, t1_nocd_clustering, sizes=(8, 12, 16), seeds=(0, 1)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)
    # Energy must track logD * log^2 n: ratio roughly flat.
    def bound(p):
        return math.log2(max(2, p.max_degree)) * math.log2(max(2, p.n)) ** 2

    ratios = [p.max_energy_median / bound(p) for p in points]
    assert ratios[-1] <= 2.5 * ratios[0]
