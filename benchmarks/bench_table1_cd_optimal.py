"""T1.CD.2 — Theorem 20 in CD: O(log n loglogD/logloglogD) energy at
O(Delta n^{1+xi}) time."""

from conftest import run_once

from repro.experiments import t1_cd_optimal


def test_t1_cd_optimal(benchmark):
    points, table = run_once(
        benchmark, t1_cd_optimal, sizes=(8, 12), seeds=(0, 1)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)
    # Theorem 20's signature: time is enormous relative to energy.
    for p in points:
        assert p.max_energy_median * 50 < p.time_median


def test_thm20_energy_beats_thm12(benchmark):
    """Theorem 20's point: lower energy than Theorem 12 at the same size,
    paying with (much) more time."""
    import random

    from repro.broadcast import (
        cluster_broadcast_protocol,
        run_broadcast,
        theorem12_params,
    )
    from repro.broadcast.cd_optimal import (
        CDOptimalParams,
        cd_optimal_broadcast_protocol,
    )
    from repro.graphs import random_gnp
    from repro.graphs.properties import diameter
    from repro.sim import CD, Knowledge

    def compare():
        n = 12
        graph = random_gnp(n, 0.3, random.Random(n))
        knowledge = Knowledge(
            n=n, max_degree=graph.max_degree, diameter=diameter(graph)
        )
        thm20 = run_broadcast(
            graph, CD,
            cd_optimal_broadcast_protocol(
                CDOptimalParams.for_graph(
                    n, graph.max_degree, iterations=3, rounds_s=2
                )
            ),
            knowledge=knowledge, seed=1,
        )
        thm12 = run_broadcast(
            graph, CD,
            cluster_broadcast_protocol(
                theorem12_params(n, epsilon=0.5, failure=0.02)
            ),
            knowledge=knowledge, seed=1,
        )
        return thm20, thm12

    thm20, thm12 = run_once(benchmark, compare)
    print(
        f"\nThm20: energy {thm20.max_energy} time {thm20.duration} | "
        f"Thm12: energy {thm12.max_energy} time {thm12.duration}"
    )
    assert thm20.delivered and thm12.delivered
    assert thm20.max_energy < thm12.max_energy
    assert thm20.duration > thm12.duration
