"""Benchmark configuration: every bench prints its reproduction table."""

import pytest


def pytest_configure(config):
    # Benches are single-shot system experiments, not microbenchmarks:
    # one round, one iteration, no warmup.
    config.option.benchmark_warmup = False


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
