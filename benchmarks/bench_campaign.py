"""Campaign infrastructure bench: sharded execution vs the serial path.

Not a paper row — this measures the subsystem itself: store + spawn
overhead on a small matrix, and that a warm store makes the re-run
effectively free (the caching contract the campaign design rests on).
"""

import os

from conftest import run_once

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    aggregate_campaign,
    run_campaign,
)

_SPEC = {
    "name": "bench",
    "rows": [
        {"row": "bounded", "sizes": [8, 12, 16], "seeds": [0, 1, 2]},
        {"row": "path", "sizes": [64, 256], "seeds": [0, 1, 2, 3]},
    ],
}


def _run_twice(out_dir):
    spec = CampaignSpec.from_dict(_SPEC)
    store = CampaignStore(os.path.join(out_dir, "results.jsonl"))
    cold = run_campaign(spec, store, jobs=2)
    warm = run_campaign(spec, store, jobs=2)
    return spec, store, cold, warm


def test_campaign_cold_then_warm(benchmark, tmp_path):
    spec, store, cold, warm = run_once(benchmark, _run_twice, str(tmp_path))
    print(f"\ncold: {cold.summary()}\nwarm: {warm.summary()}")
    assert cold.ok == cold.total and cold.all_ok
    assert warm.ran == 0 and warm.skipped == warm.total
    points = aggregate_campaign(spec, store)
    assert {p.n for p in points["bounded"]} == {8, 12, 16}
    assert all(p.seeds == 4 for p in points["path"])
