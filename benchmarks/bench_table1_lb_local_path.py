"""T1.LOCAL.LB — Theorem 1: worst pre-reception energy on a path is
Omega(log n); measured on the optimal Section 8 algorithm it is
sandwiched into Theta(log n)."""

import math

from conftest import run_once

from repro.experiments import t1_lb_local_path


def test_t1_lb_local_path(benchmark):
    rows, table = run_once(
        benchmark, t1_lb_local_path, sizes=(64, 256, 1024), seeds=(0, 1, 2)
    )
    print("\n" + table)
    assert all(row["satisfied"] for row in rows)
    # Upper sandwich: stays within a generous O(log^2 n) of the bound.
    for row in rows:
        assert row["measured_median"] <= 10 * math.log2(row["n"]) ** 1.5
