"""T1.CD.LB — Theorem 2 in CD: Omega(log n) energy via the K_{2,k}
reduction, executed against the Theorem 11 CD algorithm."""

from conftest import run_once

from repro.broadcast import cluster_broadcast_protocol, theorem11_params
from repro.experiments import t1_lb_reduction
from repro.sim import CD


def test_t1_lb_reduction_cd(benchmark):
    rows, table = run_once(
        benchmark, t1_lb_reduction,
        ks=(2, 4, 8), seeds=(0, 1), model=CD,
        protocol_builder=lambda g: cluster_broadcast_protocol(
            theorem11_params(g.n, "CD", failure=0.02)
        ),
    )
    print("\n" + table)
    assert all(row["inequality_holds"] for row in rows)
