"""ABL.* — ablations of the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.experiments import ablate_beta, ablate_probe, ablate_ps


def test_ablate_probe(benchmark):
    results, table = run_once(benchmark, ablate_probe, n=12, seeds=(0, 1, 2))
    print("\n" + table)
    # Remark 9 probes must cut worst-vertex energy in CD.
    assert results["probe"] < results["no-probe"]


def test_ablate_ps(benchmark):
    results, table = run_once(benchmark, ablate_ps, n=12, seeds=(0, 1))
    print("\n" + table)
    thm11 = results["thm11 (p=1/2, s=1)"]
    thm12 = results["thm12 (small p, s=log n)"]
    # Theorem 12 uses fewer, heavier refinements.
    assert thm12["iterations"] < thm11["iterations"]
    assert thm12["spread_s"] > thm11["spread_s"]


def test_ablate_beta(benchmark):
    rows, table = run_once(
        benchmark, ablate_beta, n=40, betas=(0.15, 0.3, 0.6), seeds=(0, 1, 2)
    )
    print("\n" + table)
    # Lemma 14: measured edge-cut rate below ~2 beta (+ slack).
    for row in rows:
        assert row["edge_cut_rate"] <= row["lemma14_bound"] + 0.15
    # More aggressive beta -> more clusters.
    assert rows[0]["clusters"] <= rows[-1]["clusters"]


def test_baseline_decay_energy_grows_with_d(benchmark):
    from repro.experiments import baseline_decay

    points, table = run_once(
        benchmark, baseline_decay, sizes=(16, 36, 64), seeds=(0, 1)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)
    # The baseline's pathology: energy grows with diameter.
    assert points[-1].max_energy_median > points[0].max_energy_median
