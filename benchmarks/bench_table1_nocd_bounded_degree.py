"""T1.noCD.3 — Corollary 13: Delta = O(1) graphs, O(n log n) time and
O(log n) energy in No-CD via the Theorem 3 LOCAL simulation."""

from conftest import run_once

from repro.experiments import t1_nocd_bounded_degree


def test_t1_nocd_bounded_degree(benchmark):
    points, table = run_once(
        benchmark, t1_nocd_bounded_degree, sizes=(8, 12, 16), seeds=(0, 1)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)


def test_simulation_beats_native_nocd(benchmark):
    """Corollary 13's point: on bounded-degree graphs, simulating LOCAL
    costs less energy than running the No-CD algorithm natively."""
    from repro.broadcast import (
        cluster_broadcast_protocol,
        run_broadcast,
        theorem11_params,
    )
    from repro.broadcast.local_sim import local_sim_broadcast_protocol
    from repro.graphs import path_graph
    from repro.sim import NO_CD, Knowledge

    def compare():
        n = 12
        graph = path_graph(n)
        knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
        sim = run_broadcast(
            graph, NO_CD, local_sim_broadcast_protocol(failure=0.02),
            knowledge=knowledge, seed=3,
        )
        native = run_broadcast(
            graph, NO_CD,
            cluster_broadcast_protocol(
                theorem11_params(n, "No-CD", failure=0.02)
            ),
            knowledge=knowledge, seed=3,
        )
        return sim, native

    sim, native = run_once(benchmark, compare)
    print(f"\nLOCAL-sim energy {sim.max_energy} vs native No-CD {native.max_energy}")
    assert sim.delivered and native.delivered
    assert sim.max_energy < native.max_energy
