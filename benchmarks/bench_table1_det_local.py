"""T1.det.LOCAL — Theorem 25: deterministic LOCAL broadcast,
O(n log n log N) time and O(log n log N) energy."""

from conftest import run_once

from repro.experiments import t1_det_local


def test_t1_det_local(benchmark):
    points, table = run_once(
        benchmark, t1_det_local, sizes=(6, 8, 12), seeds=(0,)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)
