"""T1.det.CD — Theorem 27: deterministic CD broadcast,
O(N^2 n log n log N) time and O(log^3 N log n) energy."""

from conftest import run_once

from repro.experiments import t1_det_cd


def test_t1_det_cd(benchmark):
    points, table = run_once(benchmark, t1_det_cd, sizes=(4, 6, 8), seeds=(0,))
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)
    # Deterministic CD pays heavily in time, not energy.
    for p in points:
        assert p.max_energy_median * 10 < p.time_median
