"""T1.CD.1 — Theorem 12 in CD: the epsilon time/energy tradeoff."""

from conftest import run_once

from repro.experiments import t1_cd_clustering


def test_t1_cd_clustering(benchmark):
    points, table = run_once(
        benchmark, t1_cd_clustering, sizes=(8, 12, 16), seeds=(0, 1)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)


def test_cd_beats_nocd_energy(benchmark):
    """Table 1's vertical comparison: at the same size, CD clustering
    uses less worst-vertex energy than No-CD clustering (collision
    detection pays)."""
    import random

    from repro.broadcast import (
        cluster_broadcast_protocol,
        run_broadcast,
        theorem11_params,
    )
    from repro.graphs import random_gnp
    from repro.graphs.properties import diameter
    from repro.sim import CD, NO_CD, Knowledge

    def compare():
        n = 14
        graph = random_gnp(n, 0.3, random.Random(n))
        knowledge = Knowledge(
            n=n, max_degree=graph.max_degree, diameter=diameter(graph)
        )
        cd = run_broadcast(
            graph, CD,
            cluster_broadcast_protocol(theorem11_params(n, "CD", failure=0.02)),
            knowledge=knowledge, seed=1,
        )
        nocd = run_broadcast(
            graph, NO_CD,
            cluster_broadcast_protocol(theorem11_params(n, "No-CD", failure=0.02)),
            knowledge=knowledge, seed=1,
        )
        return cd, nocd

    cd, nocd = run_once(benchmark, compare)
    print(f"\nCD max energy: {cd.max_energy}, No-CD max energy: {nocd.max_energy}")
    assert cd.delivered and nocd.delivered
    assert cd.max_energy < nocd.max_energy
