"""FIG.1 + Theorem 21 — the path algorithm: Figure 1's timeline and the
(<= 2n time, O(log n) expected energy) guarantees."""

import math

from conftest import run_once

from repro.experiments import figure1, t8_path_algorithm


def test_figure1_timeline(benchmark):
    rendering = run_once(benchmark, figure1, n=32, seed=0)
    print("\n" + rendering)
    assert "delivered" in rendering
    assert "P" in rendering


def test_t8_path_guarantees(benchmark):
    points, table = run_once(
        benchmark, t8_path_algorithm, sizes=(64, 256, 1024), seeds=(0, 1, 2)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)
    for p in points:
        n_pow2 = 2 ** math.ceil(math.log2(p.n))
        assert p.time_median <= 2 * n_pow2
        # Mean energy within the Lemma 23 constant of ln(2n).
        assert p.mean_energy_median <= (4 * math.e / (math.e - 2)) * math.log(
            2 * p.n
        ) + 4
