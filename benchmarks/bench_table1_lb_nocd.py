"""T1.noCD.LB — Theorem 2 in No-CD: the K_{2,k} reduction gives
Omega(log Delta log n) energy; we execute the reduction and check its
accounting on the decay baseline."""

from conftest import run_once

from repro.experiments import t1_lb_reduction
from repro.sim import NO_CD


def test_t1_lb_reduction_nocd(benchmark):
    rows, table = run_once(
        benchmark, t1_lb_reduction, ks=(2, 4, 8, 16), seeds=(0, 1, 2),
        model=NO_CD,
    )
    print("\n" + table)
    assert all(row["inequality_holds"] for row in rows)
    # Contention raises the derived LE's time (the engine of the bound).
    assert rows[-1]["le_time_median"] >= rows[0]["le_time_median"]
