"""T1.LOCAL.1 — Theorem 11 in LOCAL: O(n log n) time, O(log n) energy."""

from conftest import run_once

from repro.experiments import t1_local_clustering


def test_t1_local_clustering(benchmark):
    points, table = run_once(
        benchmark, t1_local_clustering, sizes=(8, 16, 32), seeds=(0, 1, 2)
    )
    print("\n" + table)
    assert all(p.delivered == p.seeds for p in points)
    # Flat-ratio check: energy/log n must not grow with n.
    ratios = [p.max_energy_median / max(1.0, p.n.bit_length()) for p in points]
    assert ratios[-1] <= 2.0 * ratios[0]
